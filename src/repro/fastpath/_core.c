/* repro.fastpath._core -- compiled execution backend for the engine.
 *
 * Three entry points, each a C mirror of a documented pure-Python hot
 * loop (the Python source is normative; this file must replicate it
 * event-for-event so the bit-identical schedule gates in
 * tools/bench_*.py hold):
 *
 *   run(sim, until=None)
 *       Simulator.run / Simulator._run_until over the heap backend.
 *       Same dispatch, same stale-entry skip, same exact budget check,
 *       same inline handling of exact-class Timeout/SimEvent and the
 *       (event, value, stagger) delayed-fire payload.  Falls back to
 *       Python calls (sim._schedule, awaited.add_waiter, ev._fire) for
 *       every subclassed or unusual awaitable, with the simulator's
 *       authoritative state synchronized around each call.
 *
 *   batch_expand(kid_map, children, local, limit, thresh)
 *       MaterializedTree.batch_expand: the DFS inner loop against the
 *       precomputed child map.
 *
 *   LockPhase(spec)
 *       A fused working-phase coroutine for LockBasedAlgorithm: the
 *       visit / release / reacquire / barrier-reset cycle of
 *       working_phase's fault-free inlined body, executed as a C state
 *       machine instead of a generator.  A worker process yields the
 *       LockPhase object as a sentinel; the run loop drives the phase
 *       through the identical sequence of heap pushes (same times,
 *       same sequence numbers, same event count) and resumes the
 *       worker generator synchronously when the phase completes.
 *
 * State synchronization contract: the Simulator instance dict stays
 * authoritative.  Before any Python call that might observe or mutate
 * engine state, `now` and `_seq` are written back; after any Python
 * call that might schedule, `_seq` is reloaded.  `events_processed`
 * is written on every exit path (mirroring the pure loop's finally).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* ------------------------------------------------------------------ */
/* configured state                                                   */
/* ------------------------------------------------------------------ */

static PyTypeObject *TimeoutType;
static PyTypeObject *SimEventType;
static PyTypeObject *ProcessType;
static PyObject *SimulationError;
static PyObject *Cancelled;

/* interned attribute/dict keys */
static PyObject *s_now, *s_seq, *s_events_processed, *s_live_processes,
    *s_heap, *s_max_events, *s_limit_error, *s_succeed, *s_schedule,
    *s_add_waiter, *s_fire_m, *s_nodes_visited, *s_reacquires,
    *s_releases, *s_cancels, *s_waiters_key, *s_probes;

/* slot offsets (T_OBJECT_EX members of the configured classes) */
static Py_ssize_t off_t_delay, off_t_value;
static Py_ssize_t off_e_fired, off_e_scheduled, off_e_value, off_e_waiters;
static Py_ssize_t off_p_body, off_p_done, off_p_alive, off_p_name;
static Py_ssize_t off_f_locked, off_f_queue, off_f_acq, off_f_cacq,
    off_f_busy, off_f_acqat;
static Py_ssize_t off_st_pushes, off_st_pops, off_st_released,
    off_st_reacquired;
static Py_ssize_t off_w_value, off_w_writes;

static int configured = 0;

#define SLOT(o, off) (*(PyObject **)((char *)(o) + (off)))

/* Replace a slot's object (slot may be NULL for an unset T_OBJECT_EX). */
static void
slot_store(PyObject *o, Py_ssize_t off, PyObject *v /* new ref consumed */)
{
    PyObject *old = SLOT(o, off);
    SLOT(o, off) = v;
    Py_XDECREF(old);
}

static Py_ssize_t
resolve_slot(PyObject *cls, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    Py_ssize_t off = -1;
    if (descr == NULL)
        return -1;
    if (Py_TYPE(descr) == &PyMemberDescr_Type) {
        PyMemberDef *m = ((PyMemberDescrObject *)descr)->d_member;
        if (m != NULL && m->type == T_OBJECT_EX)
            off = m->offset;
    }
    Py_DECREF(descr);
    if (off < 0)
        PyErr_Format(PyExc_TypeError,
                     "fastpath: cannot resolve slot %s on %R", name, cls);
    return off;
}

/* -- integer slot/dict helpers ------------------------------------- */

static int
slot_add_long(PyObject *o, Py_ssize_t off, long long delta)
{
    PyObject *cur = SLOT(o, off);
    long long v;
    PyObject *nv;
    if (cur == NULL || !PyLong_CheckExact(cur)) {
        PyErr_SetString(PyExc_TypeError, "fastpath: non-int counter slot");
        return -1;
    }
    v = PyLong_AsLongLong(cur);
    if (v == -1 && PyErr_Occurred())
        return -1;
    nv = PyLong_FromLongLong(v + delta);
    if (nv == NULL)
        return -1;
    slot_store(o, off, nv);
    return 0;
}

static int
slot_add_double(PyObject *o, Py_ssize_t off, double delta)
{
    PyObject *cur = SLOT(o, off);
    double v;
    PyObject *nv;
    if (cur == NULL)
        { PyErr_SetString(PyExc_TypeError, "fastpath: unset float slot");
          return -1; }
    v = PyFloat_AsDouble(cur);
    if (v == -1.0 && PyErr_Occurred())
        return -1;
    nv = PyFloat_FromDouble(v + delta);
    if (nv == NULL)
        return -1;
    slot_store(o, off, nv);
    return 0;
}

static int
dict_add_long(PyObject *d, PyObject *key, long long delta)
{
    PyObject *cur = PyDict_GetItemWithError(d, key);
    long long v;
    PyObject *nv;
    int r;
    if (cur == NULL) {
        if (!PyErr_Occurred())
            PyErr_Format(PyExc_KeyError, "fastpath: missing key %R", key);
        return -1;
    }
    v = PyLong_AsLongLong(cur);
    if (v == -1 && PyErr_Occurred())
        return -1;
    nv = PyLong_FromLongLong(v + delta);
    if (nv == NULL)
        return -1;
    r = PyDict_SetItem(d, key, nv);
    Py_DECREF(nv);
    return r;
}

/* ------------------------------------------------------------------ */
/* heap primitives over sim._heap (a plain list of 4-tuples)          */
/* ------------------------------------------------------------------ */

/* Strict less-than matching Python tuple comparison for heap items.
 * Items are (time, seq, proc, value): times are floats, seq ints and
 * unique, so comparison always resolves within the first two fields on
 * canonical runs; anything unusual falls back to rich comparison. */
static int
item_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b)
            && PyTuple_GET_SIZE(a) >= 2 && PyTuple_GET_SIZE(b) >= 2) {
        PyObject *ta = PyTuple_GET_ITEM(a, 0);
        PyObject *tb = PyTuple_GET_ITEM(b, 0);
        if (PyFloat_CheckExact(ta) && PyFloat_CheckExact(tb)) {
            double da = PyFloat_AS_DOUBLE(ta), db = PyFloat_AS_DOUBLE(tb);
            if (da != db)
                return da < db;
            PyObject *sa = PyTuple_GET_ITEM(a, 1);
            PyObject *sb = PyTuple_GET_ITEM(b, 1);
            if (PyLong_CheckExact(sa) && PyLong_CheckExact(sb)) {
                int overflow_a, overflow_b;
                long long la = PyLong_AsLongLongAndOverflow(sa, &overflow_a);
                long long lb = PyLong_AsLongLongAndOverflow(sb, &overflow_b);
                if (!overflow_a && !overflow_b
                        && !(la == -1 && PyErr_Occurred()))
                    return la < lb;
                PyErr_Clear();
            }
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* heappush: list takes its own reference; caller keeps its own. */
static int
heap_push_item(PyObject *heap, PyObject *item)
{
    Py_ssize_t pos;
    if (PyList_Append(heap, item) < 0)
        return -1;
    pos = PyList_GET_SIZE(heap) - 1;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        PyObject *pi = PyList_GET_ITEM(heap, parent);
        PyObject *ci = PyList_GET_ITEM(heap, pos);
        int lt = item_lt(ci, pi);
        if (lt < 0)
            return -1;
        if (!lt)
            break;
        PyList_SET_ITEM(heap, parent, ci);
        PyList_SET_ITEM(heap, pos, pi);
        pos = parent;
    }
    return 0;
}

/* heappop: returns a new reference; heap must be non-empty. */
static PyObject *
heap_pop_item(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    PyObject *ret;
    Py_ssize_t pos, child;
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    n -= 1;
    if (n == 0)
        return last;
    /* Steal heap[0]'s reference as the result, seat `last` at the root
     * and sift it down. */
    ret = PyList_GET_ITEM(heap, 0);
    PyList_SET_ITEM(heap, 0, last);
    pos = 0;
    for (;;) {
        child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n) {
            int lt = item_lt(PyList_GET_ITEM(heap, child + 1),
                             PyList_GET_ITEM(heap, child));
            if (lt < 0)
                goto fail;
            if (lt)
                child += 1;
        }
        PyObject *ci = PyList_GET_ITEM(heap, child);
        PyObject *pi = PyList_GET_ITEM(heap, pos);
        int lt2 = item_lt(ci, pi);
        if (lt2 < 0)
            goto fail;
        if (!lt2)
            break;
        PyList_SET_ITEM(heap, pos, ci);
        PyList_SET_ITEM(heap, child, pi);
        pos = child;
    }
    return ret;
fail:
    Py_DECREF(ret);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* run context                                                        */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject *sim;      /* borrowed from the call args */
    PyObject *simdict;  /* strong: PyObject_GenericGetDict(sim)        */
    PyObject *heap;     /* strong: sim._heap                           */
    double now;
    long long seq;      /* C copy of sim._seq                          */
    int seq_dirty;      /* seq advanced in C, not yet written back     */
    long long nev;      /* C copy of sim.events_processed              */
    long long limit;    /* sim.max_events                              */
} RunCtx;

static int
rc_write_seq(RunCtx *rc)
{
    if (rc->seq_dirty) {
        PyObject *v = PyLong_FromLongLong(rc->seq);
        int r;
        if (v == NULL)
            return -1;
        r = PyDict_SetItem(rc->simdict, s_seq, v);
        Py_DECREF(v);
        if (r < 0)
            return -1;
        rc->seq_dirty = 0;
    }
    return 0;
}

static int
rc_reload_seq(RunCtx *rc)
{
    PyObject *v = PyDict_GetItemWithError(rc->simdict, s_seq);
    long long sq;
    if (v == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_AttributeError, "fastpath: sim._seq gone");
        return -1;
    }
    sq = PyLong_AsLongLong(v);
    if (sq == -1 && PyErr_Occurred())
        return -1;
    rc->seq = sq;
    rc->seq_dirty = 0;
    return 0;
}

/* Write sim.now = time_obj (borrowed). */
static int
rc_write_now(RunCtx *rc, PyObject *time_obj)
{
    return PyDict_SetItem(rc->simdict, s_now, time_obj);
}

/* Push (t, ++seq, proc, value) minting a fresh time float. */
static int
rc_push(RunCtx *rc, double t, PyObject *proc, PyObject *value)
{
    PyObject *item = PyTuple_New(4);
    PyObject *tf, *sq;
    int r;
    if (item == NULL)
        return -1;
    tf = PyFloat_FromDouble(t);
    rc->seq += 1;
    rc->seq_dirty = 1;
    sq = PyLong_FromLongLong(rc->seq);
    if (tf == NULL || sq == NULL) {
        Py_XDECREF(tf);
        Py_XDECREF(sq);
        Py_DECREF(item);
        return -1;
    }
    PyTuple_SET_ITEM(item, 0, tf);
    PyTuple_SET_ITEM(item, 1, sq);
    Py_INCREF(proc);
    PyTuple_SET_ITEM(item, 2, proc);
    if (value == NULL)
        value = Py_None;
    Py_INCREF(value);
    PyTuple_SET_ITEM(item, 3, value);
    r = heap_push_item(rc->heap, item);
    Py_DECREF(item);
    return r;
}

/* Push (time_obj, ++seq, proc, value) reusing an existing time float
 * (the pure loop would mint an equal float; heap order compares by
 * value, so reusing the object is invisible to the schedule). */
static int
rc_push_obj(RunCtx *rc, PyObject *time_obj, PyObject *proc, PyObject *value)
{
    PyObject *item = PyTuple_New(4);
    PyObject *sq;
    int r;
    if (item == NULL)
        return -1;
    rc->seq += 1;
    rc->seq_dirty = 1;
    sq = PyLong_FromLongLong(rc->seq);
    if (sq == NULL) {
        Py_DECREF(item);
        return -1;
    }
    Py_INCREF(time_obj);
    PyTuple_SET_ITEM(item, 0, time_obj);
    PyTuple_SET_ITEM(item, 1, sq);
    Py_INCREF(proc);
    PyTuple_SET_ITEM(item, 2, proc);
    if (value == NULL)
        value = Py_None;
    Py_INCREF(value);
    PyTuple_SET_ITEM(item, 3, value);
    r = heap_push_item(rc->heap, item);
    Py_DECREF(item);
    return r;
}

/* Raise sim._limit_error() with sim.now already set to `time_obj`
 * (the pure loop assigns self.now = time before the check). */
static int
rc_raise_limit(RunCtx *rc, PyObject *time_obj)
{
    PyObject *exc;
    if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0)
        return -1;
    exc = PyObject_CallMethodNoArgs(rc->sim, s_limit_error);
    if (exc == NULL)
        return -1;
    PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
    Py_DECREF(exc);
    return -1;
}

/* ------------------------------------------------------------------ */
/* LockPhase                                                          */
/* ------------------------------------------------------------------ */

enum {
    PH_IDLE = 0,        /* not running (no worker bound)               */
    PH_AFTER_VISIT,     /* woke from the visit-cost timeout            */
    PH_LOCK_WAIT,       /* woke from the lock round-trip timeout       */
    PH_GRANTED,         /* woke holding the lock (zero-Timeout or ev)  */
    PH_UNLOCK_WAIT,     /* woke from the unlock reference timeout      */
    PH_RESET_WAIT       /* woke from the barrier-reset write timeout   */
};

enum { SUB_RELEASE = 0, SUB_REACQUIRE = 1 };

typedef struct {
    PyObject_HEAD
    /* configuration (strong references; immutable after init) */
    PyObject *sim;
    PyObject *local;          /* list: stack.local                     */
    PyObject *shared;         /* deque: stack.shared                   */
    PyObject *shared_append;  /* bound shared.append                   */
    PyObject *shared_pop;     /* bound shared.pop                      */
    PyObject *stack;          /* SplitStack (counter slots)            */
    PyObject *st_dict;        /* ThreadStats.__dict__                  */
    PyObject *wa;             /* SharedVar work_avail[rank]            */
    PyObject *fifo;           /* FifoLock                              */
    PyObject *queue;          /* deque: fifo._queue                    */
    PyObject *queue_append;   /* bound queue.append                    */
    PyObject *queue_popleft;  /* bound queue.popleft                   */
    PyObject *ev_name;        /* str: fifo._ev_name                    */
    PyObject *enter_cb;       /* callable(): phase-entry bookkeeping   */
    PyObject *exit_cb;        /* callable(): phase-exit bookkeeping    */
    PyObject *kid_map;        /* dict: MaterializedTree._kid_map       */
    PyObject *children_fb;    /* callable: base tree children fallback */
    PyObject *barrier_dict;   /* CancelableBarrier.__dict__ or NULL    */
    double reset_cost;        /* barrier-reset write cost (with hook)  */
    double home_occupancy;    /* barrier cancel stagger                */
    double lock_to;           /* lock round trip; < 0 means free       */
    double unlock_to;         /* unlock reference; < 0 means free      */
    double *vt;               /* visit cost per batch size [0..limit]  */
    long long chunk;
    long long thresh;
    long long limit;
    /* runtime */
    PyObject *worker;         /* the suspended Process, while running  */
    int state;
    int substate;
} LockPhaseObject;

static PyTypeObject LockPhase_Type;  /* forward */

/* ------------------------------------------------------------------ */
/* OwnerPhase: fused owner-only working phase (upc-distmem / mpi-ws)  */
/* ------------------------------------------------------------------ */

enum {
    OP_IDLE = 0,        /* not running (no worker bound)               */
    OP_AFTER_VISIT,     /* woke from the visit-cost timeout            */
    OP_SVC_LOOP,        /* bounced to the worker for request service   */
    OP_SVC_EXIT         /* bounced for the final racing-request deny   */
};

typedef struct {
    PyObject_HEAD
    /* configuration (strong references; immutable after init) */
    PyObject *sim;
    PyObject *local;          /* list: stack.local                     */
    PyObject *shared;         /* deque: stack.shared                   */
    PyObject *shared_append;  /* bound shared.append                   */
    PyObject *shared_pop;     /* bound shared.pop                      */
    PyObject *stack;          /* SplitStack (counter slots)            */
    PyObject *st_dict;        /* ThreadStats.__dict__                  */
    PyObject *wa;             /* SharedVar work_avail[rank]; NULL: mpi */
    PyObject *no_work;        /* sentinel poked into wa at phase exit  */
    PyObject *req_slot;       /* SharedVar request[rank]; NULL: mpi    */
    PyObject *poll;           /* bound iprobe(tags); NULL: distmem     */
    PyObject *pending;        /* list MsgWorld._pending[rank] or NULL  */
    PyObject *enter_cb;       /* callable(): phase-entry bookkeeping   */
    PyObject *exit_cb;        /* callable(): phase-exit bookkeeping    */
    PyObject *kid_map;        /* dict: MaterializedTree._kid_map       */
    PyObject *children_fb;    /* callable: base tree children fallback */
    double *vt;               /* visit cost per batch size [0..limit]  */
    long long chunk;
    long long thresh;
    long long limit;
    /* runtime */
    PyObject *worker;         /* the suspended Process, while running  */
    int state;
} OwnerPhaseObject;

static PyTypeObject OwnerPhase_Type;  /* forward */

/* SearchPhase: the polling victim-probe loop shared (modulo the
 * request-variable poll) by the lock-based and distmem search phases.
 * Probes, probe-cost accounting, and backoff run in C; every steal
 * attempt -- and, for distmem, every pending-request service -- is
 * bounced to the suspended worker generator, which runs the Python
 * try_steal/service_request protocol and re-yields the phase. */
enum {
    SP_IDLE = 0,        /* not running (no worker bound)               */
    SP_SVC_TOP,         /* bounced to service a request (round top)    */
    SP_PRE_STEAL,       /* woke from the pre-steal probe-cost timeout  */
    SP_POST_STEAL,      /* re-yielded after a failed steal attempt     */
    SP_END_COST,        /* woke from the end-of-round cost timeout     */
    SP_BACKOFF          /* woke from the between-rounds backoff        */
};

typedef struct {
    PyObject_HEAD
    /* configuration (strong references; immutable after init) */
    PyObject *sim;
    PyObject *st_dict;        /* ThreadStats.__dict__ (probes)         */
    PyObject *cycle;          /* callable -> list: shuffled probe order */
    PyObject *segments;       /* list of victim lists for the native   */
    PyObject *getrandbits;    /*   shuffle, + Random.getrandbits; NULL */
    PyObject *row;            /* list of floats: ref cost per rank     */
    PyObject *slots;          /* list of SharedVar: work_avail         */
    PyObject *req_slot;       /* SharedVar request[rank]; NULL: lock   */
    double backoff_min;
    double backoff_factor;
    double backoff_max;
    double slow;              /* ctx._slow compute-cost multiplier     */
    int persist;              /* persist_while_working                 */
    /* runtime */
    PyObject *victims;        /* current round's probe order (owned)   */
    Py_ssize_t idx;           /* next victim index in `victims`        */
    long long cur_victim;     /* victim across the pre-steal timeout   */
    double cost_acc;
    double backoff;
    long long probes_acc;     /* st.probes delta, flushed at yields    */
    int any_working;
    PyObject *worker;         /* the suspended Process, while running  */
    int state;
} SearchPhaseObject;

static PyTypeObject SearchPhase_Type;  /* forward */

/* IdlePhase: the mpi-ws idle loop's no-progress wait.  Between a full
 * Python idle iteration (message drain, token duties, REQUEST send)
 * and the next thing to do, the pure loop burns one ctx.compute
 * (backoff) event per empty poll.  During that wait the only state a
 * rank's idle loop can observe changing is its own mailbox -- token
 * and outstanding-request state mutate only inside the rank's own
 * iterations or on message arrival -- so the C loop schedules the
 * backoff timeouts and tests the MsgWorld._take_delivered fast path
 * (heap empty or head not yet arrived) inline, bouncing back to the
 * worker the moment a delivered message is visible. */
enum {
    IP_IDLE = 0,        /* not running (no worker bound)               */
    IP_WAIT             /* woke from a backoff timeout                 */
};

typedef struct {
    PyObject_HEAD
    /* configuration (strong references; immutable after init) */
    PyObject *sim;
    PyObject *pending;        /* list MsgWorld._pending[rank]          */
    double backoff_min;
    double backoff_factor;
    double backoff_max;
    double slow;              /* ctx._slow compute-cost multiplier     */
    /* runtime */
    double backoff;
    PyObject *worker;         /* the suspended Process, while running  */
    int state;
} IdlePhaseObject;

static PyTypeObject IdlePhase_Type;  /* forward */

static int dispatch_send(RunCtx *rc, PyObject *proc, PyObject *value,
                         PyObject *time_obj);

/* C mirror of MaterializedTree.batch_expand's inner loop. */
static int
c_batch_expand(PyObject *kid_map, PyObject *children_fb, PyObject *local,
               long long limit, long long thresh,
               long long *out_n, long long *out_pushed)
{
    long long n = 0, pushed = 0;
    Py_ssize_t llen = PyList_GET_SIZE(local);
    while (llen > 0 && n < limit) {
        PyObject *node = PyList_GET_ITEM(local, llen - 1);
        PyObject *kids;
        PyObject *owned = NULL;
        Py_INCREF(node);
        if (PyList_SetSlice(local, llen - 1, llen, NULL) < 0) {
            Py_DECREF(node);
            return -1;
        }
        llen -= 1;
        kids = PyDict_GetItemWithError(kid_map, node);
        if (kids == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(node);
                return -1;
            }
            owned = PyObject_CallOneArg(children_fb, node);
            if (owned == NULL) {
                Py_DECREF(node);
                return -1;
            }
            kids = owned;
        }
        Py_DECREF(node);
        {
            Py_ssize_t k;
            if (!PyList_CheckExact(kids)) {
                PyErr_SetString(PyExc_TypeError,
                                "fastpath: children must be a list");
                Py_XDECREF(owned);
                return -1;
            }
            k = PyList_GET_SIZE(kids);
            if (k > 0) {
                if (PyList_SetSlice(local, llen, llen, kids) < 0) {
                    Py_XDECREF(owned);
                    return -1;
                }
                pushed += k;
                llen += k;
            }
        }
        Py_XDECREF(owned);
        n += 1;
        if (llen >= thresh)
            break;
    }
    *out_n = n;
    *out_pushed = pushed;
    return 0;
}

/* Drive the phase state machine from `entry` until it parks on a heap
 * push / event registration, or completes (resuming the worker). */
static int
phase_run(LockPhaseObject *ph, RunCtx *rc, PyObject *time_obj, int entry)
{
    switch (entry) {
    case PH_IDLE:        goto main_loop;
    case PH_AFTER_VISIT: goto release_check;
    case PH_LOCK_WAIT:   goto lock_grant;
    case PH_GRANTED:     goto granted;
    case PH_UNLOCK_WAIT: goto unlocked;
    case PH_RESET_WAIT:  goto reset_body;
    default:
        PyErr_SetString(SimulationError, "fastpath: corrupt phase state");
        return -1;
    }

main_loop:
    if (PyList_GET_SIZE(ph->local) == 0) {
        Py_ssize_t shared_n = PyObject_Length(ph->shared);
        if (shared_n < 0)
            return -1;
        if (shared_n > 0) {
            ph->substate = SUB_REACQUIRE;
            goto lock_begin;
        }
        goto phase_exit;
    }
    /* visit: n, pushed = batch_expand(local, limit, thresh) */
    {
        long long n = 0, pushed = 0;
        if (c_batch_expand(ph->kid_map, ph->children_fb, ph->local,
                           ph->limit, ph->thresh, &n, &pushed) < 0)
            return -1;
        if (slot_add_long(ph->stack, off_st_pops, n) < 0
                || slot_add_long(ph->stack, off_st_pushes, pushed) < 0
                || dict_add_long(ph->st_dict, s_nodes_visited, n) < 0)
            return -1;
        if (n > 0) {
            /* yield vt[n] */
            ph->state = PH_AFTER_VISIT;
            return rc_push(rc, rc->now + ph->vt[n], (PyObject *)ph, Py_None);
        }
        /* n == 0 implies the local region was empty, handled above;
         * unreachable, but fall through identically to the generator
         * (which skips the yield when n == 0). */
    }

release_check:
    if (PyList_GET_SIZE(ph->local) >= ph->thresh) {
        ph->substate = SUB_RELEASE;
        goto lock_begin;
    }
    goto main_loop;

lock_begin:
    if (ph->lock_to >= 0.0) {
        /* yield lock_to */
        ph->state = PH_LOCK_WAIT;
        return rc_push(rc, rc->now + ph->lock_to, (PyObject *)ph, Py_None);
    }
    /* FALLTHROUGH */
lock_grant:
    {
        PyObject *locked = SLOT(ph->fifo, off_f_locked);
        if (locked != Py_True) {
            /* uncontended: locked = True; acquisitions += 1;
             * _acquired_at = sim.now; yield _T0 */
            Py_INCREF(Py_True);
            slot_store(ph->fifo, off_f_locked, Py_True);
            if (slot_add_long(ph->fifo, off_f_acq, 1) < 0)
                return -1;
            Py_INCREF(time_obj);
            slot_store(ph->fifo, off_f_acqat, time_obj);
            ph->state = PH_GRANTED;
            return rc_push_obj(rc, time_obj, (PyObject *)ph, Py_None);
        }
        /* contended: ev = SimEvent(sim, name); queue.append(ev);
         * yield ev  (the phase itself registers as the waiter) */
        {
            PyObject *ev = PyObject_CallFunctionObjArgs(
                (PyObject *)SimEventType, ph->sim, ph->ev_name, NULL);
            PyObject *r, *waiters;
            if (ev == NULL)
                return -1;
            if (slot_add_long(ph->fifo, off_f_cacq, 1) < 0) {
                Py_DECREF(ev);
                return -1;
            }
            r = PyObject_CallOneArg(ph->queue_append, ev);
            if (r == NULL) {
                Py_DECREF(ev);
                return -1;
            }
            Py_DECREF(r);
            waiters = SLOT(ev, off_e_waiters);
            if (waiters == NULL || !PyList_CheckExact(waiters)
                    || PyList_Append(waiters, (PyObject *)ph) < 0) {
                if (!PyErr_Occurred())
                    PyErr_SetString(SimulationError,
                                    "fastpath: bad event waiter list");
                Py_DECREF(ev);
                return -1;
            }
            Py_DECREF(ev);
            ph->state = PH_GRANTED;
            return 0;  /* resumed when the holder's release fires us */
        }
    }

granted:
    if (ph->substate == SUB_RELEASE) {
        /* released = local[:chunk]; del local[:chunk];
         * shared.append(released); counters */
        PyObject *released = PyList_GetSlice(ph->local, 0, ph->chunk);
        PyObject *r;
        if (released == NULL)
            return -1;
        if (PyList_SetSlice(ph->local, 0, ph->chunk, NULL) < 0) {
            Py_DECREF(released);
            return -1;
        }
        r = PyObject_CallOneArg(ph->shared_append, released);
        Py_DECREF(released);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        if (slot_add_long(ph->stack, off_st_released, ph->chunk) < 0)
            return -1;
    } else {
        /* reacquire: re-check under the lock (a queued thief may have
         * emptied the shared region while we waited). */
        Py_ssize_t shared_n = PyObject_Length(ph->shared);
        if (shared_n < 0)
            return -1;
        if (shared_n > 0) {
            PyObject *got = PyObject_CallNoArgs(ph->shared_pop);
            Py_ssize_t ngot;
            if (got == NULL)
                return -1;
            if (!PyList_CheckExact(got)) {
                PyErr_SetString(PyExc_TypeError,
                                "fastpath: shared chunk must be a list");
                Py_DECREF(got);
                return -1;
            }
            ngot = PyList_GET_SIZE(got);
            if (PyList_SetSlice(ph->local, 0, 0, got) < 0) {
                Py_DECREF(got);
                return -1;
            }
            Py_DECREF(got);
            if (slot_add_long(ph->stack, off_st_reacquired, ngot) < 0
                    || dict_add_long(ph->st_dict, s_reacquires, 1) < 0)
                return -1;
        } else {
            goto after_move;  /* nothing moved: skip the wa write */
        }
    }
    /* wa.writes += 1; wa.value = len(shared)  (both branches) */
    {
        Py_ssize_t shared_n = PyObject_Length(ph->shared);
        PyObject *nv;
        if (shared_n < 0)
            return -1;
        if (slot_add_long(ph->wa, off_w_writes, 1) < 0)
            return -1;
        nv = PyLong_FromSsize_t(shared_n);
        if (nv == NULL)
            return -1;
        slot_store(ph->wa, off_w_value, nv);
    }
after_move:
    if (ph->unlock_to >= 0.0) {
        /* yield unlock_to */
        ph->state = PH_UNLOCK_WAIT;
        return rc_push(rc, rc->now + ph->unlock_to, (PyObject *)ph, Py_None);
    }
    /* FALLTHROUGH */
unlocked:
    {
        /* busy_time += sim.now - _acquired_at; hand off or unlock */
        PyObject *acqat = SLOT(ph->fifo, off_f_acqat);
        double at;
        Py_ssize_t qn;
        if (acqat == NULL)
            { PyErr_SetString(SimulationError, "fastpath: lock state");
              return -1; }
        at = PyFloat_AsDouble(acqat);
        if (at == -1.0 && PyErr_Occurred())
            return -1;
        if (slot_add_double(ph->fifo, off_f_busy, rc->now - at) < 0)
            return -1;
        qn = PyObject_Length(ph->queue);
        if (qn < 0)
            return -1;
        if (qn > 0) {
            /* direct hand-off: acquisitions += 1; _acquired_at = now;
             * queue.popleft().succeed() */
            PyObject *ev, *r;
            if (slot_add_long(ph->fifo, off_f_acq, 1) < 0)
                return -1;
            Py_INCREF(time_obj);
            slot_store(ph->fifo, off_f_acqat, time_obj);
            ev = PyObject_CallNoArgs(ph->queue_popleft);
            if (ev == NULL)
                return -1;
            if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0) {
                Py_DECREF(ev);
                return -1;
            }
            r = PyObject_CallMethodNoArgs(ev, s_succeed);
            Py_DECREF(ev);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
            if (rc_reload_seq(rc) < 0)
                return -1;
        } else {
            Py_INCREF(Py_False);
            slot_store(ph->fifo, off_f_locked, Py_False);
        }
    }
    if (ph->substate == SUB_RELEASE) {
        /* st.releases += 1 (after the unlock, as in the generator) */
        if (dict_add_long(ph->st_dict, s_releases, 1) < 0)
            return -1;
        if (ph->barrier_dict != NULL)
            goto reset_begin;
        goto release_check;
    }
    goto main_loop;

reset_begin:
    if (ph->reset_cost > 0.0) {
        /* yield Timeout(cost): the remote cancellation-flag write */
        ph->state = PH_RESET_WAIT;
        return rc_push(rc, rc->now + ph->reset_cost, (PyObject *)ph, Py_None);
    }
    /* FALLTHROUGH */
reset_body:
    {
        /* barrier.cancels += 1; wake every waiter with a staggered
         * CANCELLED succeed; clear the waiter list. */
        PyObject *waiters;
        Py_ssize_t wn, i;
        if (dict_add_long(ph->barrier_dict, s_cancels, 1) < 0)
            return -1;
        waiters = PyDict_GetItemWithError(ph->barrier_dict, s_waiters_key);
        if (waiters == NULL || !PyList_CheckExact(waiters)) {
            if (!PyErr_Occurred())
                PyErr_SetString(SimulationError,
                                "fastpath: barrier waiter list");
            return -1;
        }
        wn = PyList_GET_SIZE(waiters);
        if (wn > 0) {
            if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0)
                return -1;
            for (i = 0; i < wn; i++) {
                PyObject *pair = PyList_GET_ITEM(waiters, i);
                PyObject *ev, *delay, *r;
                if (!PyTuple_CheckExact(pair)
                        || PyTuple_GET_SIZE(pair) != 2) {
                    PyErr_SetString(SimulationError,
                                    "fastpath: barrier waiter entry");
                    return -1;
                }
                ev = PyTuple_GET_ITEM(pair, 1);
                delay = PyFloat_FromDouble((double)i * ph->home_occupancy);
                if (delay == NULL)
                    return -1;
                /* ev.succeed(CANCELLED, delay=i * stagger) */
                r = PyObject_CallMethodObjArgs(ev, s_succeed, Cancelled,
                                               delay, NULL);
                Py_DECREF(delay);
                if (r == NULL)
                    return -1;
                Py_DECREF(r);
            }
            if (rc_reload_seq(rc) < 0)
                return -1;
            if (PyList_SetSlice(waiters, 0, PyList_GET_SIZE(waiters),
                                NULL) < 0)
                return -1;
        }
        goto release_check;
    }

phase_exit:
    {
        PyObject *r, *worker;
        int rr;
        if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0)
            return -1;
        r = PyObject_CallNoArgs(ph->exit_cb);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        if (rc_reload_seq(rc) < 0)
            return -1;
        worker = ph->worker;
        ph->worker = NULL;
        ph->state = PH_IDLE;
        /* Resume the worker generator at its `yield phase` suspension
         * within this same dispatch -- exactly where the generator
         * version's `yield from working_phase(ctx)` falls through. */
        rr = dispatch_send(rc, worker, Py_None, time_obj);
        Py_DECREF(worker);
        return rr;
    }
}

/* -- OwnerPhase machinery ------------------------------------------- */

/* SharedVar.poke mirrors (fault-free): writes += 1, then value = v. */
static int
wa_poke(PyObject *wa, PyObject *value /* borrowed */)
{
    if (slot_add_long(wa, off_w_writes, 1) < 0)
        return -1;
    Py_INCREF(value);
    slot_store(wa, off_w_value, value);
    return 0;
}

static int
wa_poke_len(PyObject *wa, Py_ssize_t n)
{
    PyObject *nv;
    if (slot_add_long(wa, off_w_writes, 1) < 0)
        return -1;
    nv = PyLong_FromSsize_t(n);
    if (nv == NULL)
        return -1;
    slot_store(wa, off_w_value, nv);
    return 0;
}

/* Drive the owner-only working phase (no stack lock: upc-distmem and
 * mpi-ws Sect. 3.3.3 / 4) until it parks on a visit timeout, bounces a
 * pending request/message to the worker, or completes.  The worker's
 * `yield phase` receives None on completion and a non-None value (the
 * request marker or the probed message) on a bounce; the Python side
 * services it and re-yields the phase, which resumes mid-loop. */
static int
owner_run(OwnerPhaseObject *op, RunCtx *rc, PyObject *time_obj, int entry)
{
    switch (entry) {
    case OP_IDLE:        goto loop_top;
    case OP_AFTER_VISIT: goto release_loop;
    case OP_SVC_LOOP:
        if (op->poll != NULL)
            goto loop_top;      /* mpi: the poll loop re-probes        */
        goto stack_check;       /* distmem: fall through to the stack  */
    case OP_SVC_EXIT:    goto exit_done;
    default:
        PyErr_SetString(SimulationError, "fastpath: corrupt phase state");
        return -1;
    }

loop_top:
    if (op->req_slot != NULL) {
        /* if req_slot.value is not None: bounce for service_request */
        PyObject *rv = SLOT(op->req_slot, off_w_value);
        if (rv == NULL) {
            PyErr_SetString(SimulationError, "fastpath: request slot unset");
            return -1;
        }
        if (rv != Py_None) {
            op->state = OP_SVC_LOOP;
            if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0)
                return -1;
            return dispatch_send(rc, op->worker, Py_True, time_obj);
        }
    }
    if (op->poll != NULL) {
        /* `while (msg := iprobe(tags)) is not None`, with the
         * MsgWorld._take_delivered fast path (mailbox empty or head
         * not yet arrived) tested inline so the overwhelmingly common
         * empty poll costs no Python call. */
        if (PyList_GET_SIZE(op->pending) > 0) {
            PyObject *head = PyList_GET_ITEM(op->pending, 0);
            PyObject *arr;
            double at;
            if (!PyTuple_CheckExact(head) || PyTuple_GET_SIZE(head) < 1) {
                PyErr_SetString(SimulationError, "fastpath: bad mailbox");
                return -1;
            }
            arr = PyTuple_GET_ITEM(head, 0);
            at = PyFloat_AsDouble(arr);
            if (at == -1.0 && PyErr_Occurred())
                return -1;
            if (at <= rc->now) {
                PyObject *msg;
                int r;
                if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0)
                    return -1;
                msg = PyObject_CallNoArgs(op->poll);
                if (msg == NULL)
                    return -1;
                if (msg != Py_None) {
                    op->state = OP_SVC_LOOP;
                    r = dispatch_send(rc, op->worker, msg, time_obj);
                    Py_DECREF(msg);
                    return r;
                }
                Py_DECREF(msg);
            }
        }
    }
stack_check:
    if (PyList_GET_SIZE(op->local) == 0) {
        Py_ssize_t shared_n = PyObject_Length(op->shared);
        if (shared_n < 0)
            return -1;
        if (shared_n > 0) {
            /* owner-only reacquire, no lock (SplitStack counters) */
            PyObject *got = PyObject_CallNoArgs(op->shared_pop);
            Py_ssize_t ngot;
            if (got == NULL)
                return -1;
            if (!PyList_CheckExact(got)) {
                PyErr_SetString(PyExc_TypeError,
                                "fastpath: shared chunk must be a list");
                Py_DECREF(got);
                return -1;
            }
            ngot = PyList_GET_SIZE(got);
            if (PyList_SetSlice(op->local, 0, 0, got) < 0) {
                Py_DECREF(got);
                return -1;
            }
            Py_DECREF(got);
            if (slot_add_long(op->stack, off_st_reacquired, ngot) < 0)
                return -1;
            if (op->wa != NULL) {
                shared_n = PyObject_Length(op->shared);
                if (shared_n < 0 || wa_poke_len(op->wa, shared_n) < 0)
                    return -1;
            }
            if (dict_add_long(op->st_dict, s_reacquires, 1) < 0)
                return -1;
            goto loop_top;  /* `continue`: re-check requests first */
        }
        goto exit_begin;
    }
    /* visit: n, pushed = batch_expand(local, limit, thresh) */
    {
        long long n = 0, pushed = 0;
        if (c_batch_expand(op->kid_map, op->children_fb, op->local,
                           op->limit, op->thresh, &n, &pushed) < 0)
            return -1;
        if (slot_add_long(op->stack, off_st_pops, n) < 0
                || slot_add_long(op->stack, off_st_pushes, pushed) < 0
                || dict_add_long(op->st_dict, s_nodes_visited, n) < 0)
            return -1;
        if (n > 0) {
            /* yield vt[n] */
            op->state = OP_AFTER_VISIT;
            return rc_push(rc, rc->now + op->vt[n], (PyObject *)op, Py_None);
        }
        /* n == 0 implies the local region was empty, handled above;
         * fall through identically to the generator. */
    }

release_loop:
    while (PyList_GET_SIZE(op->local) >= op->thresh) {
        /* released = local[:chunk]; del local[:chunk];
         * shared.append(released); counters (no lock, no gate) */
        PyObject *released = PyList_GetSlice(op->local, 0, op->chunk);
        PyObject *r;
        if (released == NULL)
            return -1;
        if (PyList_SetSlice(op->local, 0, op->chunk, NULL) < 0) {
            Py_DECREF(released);
            return -1;
        }
        r = PyObject_CallOneArg(op->shared_append, released);
        Py_DECREF(released);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        if (slot_add_long(op->stack, off_st_released, op->chunk) < 0)
            return -1;
        if (op->wa != NULL) {
            Py_ssize_t shared_n = PyObject_Length(op->shared);
            if (shared_n < 0 || wa_poke_len(op->wa, shared_n) < 0)
                return -1;
        }
        if (dict_add_long(op->st_dict, s_releases, 1) < 0)
            return -1;
    }
    goto loop_top;

exit_begin:
    if (op->wa != NULL && wa_poke(op->wa, op->no_work) < 0)
        return -1;
    if (op->req_slot != NULL) {
        /* deny any request that raced our transition to idle */
        PyObject *rv = SLOT(op->req_slot, off_w_value);
        if (rv == NULL) {
            PyErr_SetString(SimulationError, "fastpath: request slot unset");
            return -1;
        }
        if (rv != Py_None) {
            op->state = OP_SVC_EXIT;
            if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0)
                return -1;
            return dispatch_send(rc, op->worker, Py_True, time_obj);
        }
    }
exit_done:
    {
        PyObject *r, *worker;
        int rr;
        if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0)
            return -1;
        r = PyObject_CallNoArgs(op->exit_cb);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        if (rc_reload_seq(rc) < 0)
            return -1;
        worker = op->worker;
        op->worker = NULL;
        op->state = OP_IDLE;
        rr = dispatch_send(rc, worker, Py_None, time_obj);
        Py_DECREF(worker);
        return rr;
    }
}

/* random.Random._randbelow_with_getrandbits, draw-for-draw: k =
 * n.bit_length() bits per attempt, rejecting r >= n.  Calling the
 * (C-implemented) bound getrandbits keeps the Mersenne Twister state
 * bit-identical to the pure path's draws.  n >= 1; returns -1 on
 * error (check PyErr_Occurred -- valid draws are never negative). */
static long
c_randbelow(PyObject *getrandbits, long n)
{
    long t = n, r;
    int k = 0;
    while (t > 0) {
        k++;
        t >>= 1;
    }
    for (;;) {
        PyObject *kk = PyLong_FromLong(k);
        PyObject *ro;
        if (kk == NULL)
            return -1;
        ro = PyObject_CallOneArg(getrandbits, kk);
        Py_DECREF(kk);
        if (ro == NULL)
            return -1;
        r = PyLong_AsLong(ro);
        Py_DECREF(ro);
        if (r == -1 && PyErr_Occurred())
            return -1;
        if (r < n)
            return r;
    }
}

/* random.Random.shuffle, draw-for-draw: Fisher-Yates from the top,
 * j = _randbelow(i + 1) per position. */
static int
c_shuffle(PyObject *list, PyObject *getrandbits)
{
    Py_ssize_t i;
    for (i = PyList_GET_SIZE(list) - 1; i >= 1; i--) {
        long j = c_randbelow(getrandbits, (long)i + 1);
        PyObject *a, *b;
        if (j < 0 && PyErr_Occurred())
            return -1;
        a = PyList_GET_ITEM(list, i);
        b = PyList_GET_ITEM(list, j);
        PyList_SET_ITEM(list, i, b);
        PyList_SET_ITEM(list, j, a);
    }
    return 0;
}

/* Flush the C-accumulated probe count into st.probes.  Called before
 * every yield/bounce/exit so Python observes the same counter values
 * at the same points as the pure generator. */
static int
sp_flush_probes(SearchPhaseObject *sp)
{
    if (sp->probes_acc != 0) {
        if (dict_add_long(sp->st_dict, s_probes, sp->probes_acc) < 0)
            return -1;
        sp->probes_acc = 0;
    }
    return 0;
}

/* Drive the polling search phase (lock-based Sect. 3.1 / distmem
 * Sect. 3.3.3) until it parks on a probe-cost or backoff timeout,
 * bounces a steal attempt (the victim's rank) or a pending request
 * (True) to the worker, or exhausts the search.  The worker's `yield
 * phase` receives None when the search gives up (return False); after
 * a *failed* steal it re-yields the phase, and after a successful one
 * it calls phase.abort() and returns True without re-yielding. */
static int
search_run(SearchPhaseObject *sp, RunCtx *rc, PyObject *time_obj, int entry)
{
    switch (entry) {
    case SP_IDLE:
        sp->backoff = sp->backoff_min;
        goto round_top;
    case SP_SVC_TOP:    goto round_start;
    case SP_PRE_STEAL:  goto steal_bounce;
    case SP_POST_STEAL:
        /* "the probe proceeds to the next victim" after a denial */
        sp->any_working = 1;
        goto probe_loop;
    case SP_END_COST:   goto round_end;
    case SP_BACKOFF:    goto round_top;
    default:
        PyErr_SetString(SimulationError, "fastpath: corrupt phase state");
        return -1;
    }

round_top:
    if (sp->req_slot != NULL) {
        /* distmem: if req_slot.value is not None, bounce for service */
        PyObject *rv = SLOT(sp->req_slot, off_w_value);
        if (rv == NULL) {
            PyErr_SetString(SimulationError, "fastpath: request slot unset");
            return -1;
        }
        if (rv != Py_None) {
            sp->state = SP_SVC_TOP;
            if (sp_flush_probes(sp) < 0)
                return -1;
            if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0)
                return -1;
            return dispatch_send(rc, sp->worker, Py_True, time_obj);
        }
    }
round_start:
    if (sp->segments != NULL) {
        /* Native cycle(): copy each victim segment and Fisher-Yates it
         * in place, consuming the rank's Mersenne Twister exactly as
         * `shuffled(seg0) + shuffled(seg1) + ...` would.  getrandbits
         * cannot touch simulator state, so no now/seq sync is needed. */
        PyObject *vs = NULL;
        Py_ssize_t nseg = PyList_GET_SIZE(sp->segments), si;
        for (si = 0; si < nseg; si++) {
            PyObject *seg = PyList_GET_ITEM(sp->segments, si);
            PyObject *copy = PyList_GetSlice(seg, 0, PyList_GET_SIZE(seg));
            if (copy == NULL || c_shuffle(copy, sp->getrandbits) < 0) {
                Py_XDECREF(copy);
                Py_XDECREF(vs);
                return -1;
            }
            if (vs == NULL) {
                vs = copy;
            } else {
                Py_ssize_t at = PyList_GET_SIZE(vs);
                int bad = PyList_SetSlice(vs, at, at, copy) < 0;
                Py_DECREF(copy);
                if (bad) {
                    Py_DECREF(vs);
                    return -1;
                }
            }
        }
        if (vs == NULL && (vs = PyList_New(0)) == NULL)
            return -1;
        Py_XSETREF(sp->victims, vs);
    } else {
        /* victims = cycle(): one shuffled probe order, drawn from the
         * rank's deterministic RNG stream exactly as the generator's
         * `for victim in cycle()` would. */
        PyObject *vs;
        if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0)
            return -1;
        vs = PyObject_CallNoArgs(sp->cycle);
        if (vs == NULL)
            return -1;
        if (!PyList_CheckExact(vs)) {
            Py_DECREF(vs);
            PyErr_SetString(PyExc_TypeError,
                            "fastpath: probe cycle must return a list");
            return -1;
        }
        Py_XSETREF(sp->victims, vs);
        if (rc_reload_seq(rc) < 0)
            return -1;
    }
    sp->idx = 0;
    sp->cost_acc = 0.0;
    sp->any_working = 0;

probe_loop:
    while (sp->victims != NULL && sp->idx < PyList_GET_SIZE(sp->victims)) {
        PyObject *vobj = PyList_GET_ITEM(sp->victims, sp->idx);
        PyObject *slot, *aval;
        long long victim, avail;
        double c;
        victim = PyLong_AsLongLong(vobj);
        if (victim == -1 && PyErr_Occurred())
            return -1;
        sp->idx += 1;
        sp->probes_acc += 1;
        if (victim < 0 || victim >= PyList_GET_SIZE(sp->row)
                || victim >= PyList_GET_SIZE(sp->slots)) {
            PyErr_SetString(SimulationError,
                            "fastpath: probe victim out of range");
            return -1;
        }
        c = PyFloat_AsDouble(PyList_GET_ITEM(sp->row, victim));
        if (c == -1.0 && PyErr_Occurred())
            return -1;
        sp->cost_acc += c;
        slot = PyList_GET_ITEM(sp->slots, victim);
        aval = SLOT(slot, off_w_value);
        if (aval == NULL || !PyLong_CheckExact(aval)) {
            PyErr_SetString(SimulationError,
                            "fastpath: non-int work_avail value");
            return -1;
        }
        avail = PyLong_AsLongLong(aval);
        if (avail == -1 && PyErr_Occurred())
            return -1;
        if (avail == 0) {
            sp->any_working = 1;
        } else if (avail > 0) {
            sp->cur_victim = victim;
            if (sp_flush_probes(sp) < 0)
                return -1;
            if (sp->cost_acc > 0.0) {
                /* yield from ctx.compute(cost_acc) before the steal */
                double d = sp->cost_acc * sp->slow;
                sp->cost_acc = 0.0;
                if (d > 0.0) {
                    sp->state = SP_PRE_STEAL;
                    return rc_push(rc, rc->now + d, (PyObject *)sp, Py_None);
                }
            }
            goto steal_bounce;
        }
    }
    if (sp_flush_probes(sp) < 0)
        return -1;
    if (sp->cost_acc > 0.0) {
        /* trailing yield from ctx.compute(cost_acc) */
        double d = sp->cost_acc * sp->slow;
        sp->cost_acc = 0.0;
        if (d > 0.0) {
            sp->state = SP_END_COST;
            return rc_push(rc, rc->now + d, (PyObject *)sp, Py_None);
        }
    }

round_end:
    if (!sp->persist || !sp->any_working)
        goto exit_nowork;
    {
        /* yield from ctx.compute(backoff); backoff grows geometrically */
        double d = sp->backoff * sp->slow;
        sp->backoff = sp->backoff * sp->backoff_factor;
        if (sp->backoff > sp->backoff_max)
            sp->backoff = sp->backoff_max;
        if (d > 0.0) {
            sp->state = SP_BACKOFF;
            return rc_push(rc, rc->now + d, (PyObject *)sp, Py_None);
        }
        goto round_top;
    }

steal_bounce:
    {
        PyObject *v = PyLong_FromLongLong(sp->cur_victim);
        int r;
        if (v == NULL)
            return -1;
        sp->state = SP_POST_STEAL;
        if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0) {
            Py_DECREF(v);
            return -1;
        }
        r = dispatch_send(rc, sp->worker, v, time_obj);
        Py_DECREF(v);
        return r;
    }

exit_nowork:
    {
        PyObject *worker = sp->worker;
        int r;
        Py_CLEAR(sp->victims);
        sp->worker = NULL;
        sp->state = SP_IDLE;
        if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0) {
            Py_DECREF(worker);
            return -1;
        }
        r = dispatch_send(rc, worker, Py_None, time_obj);
        Py_DECREF(worker);
        return r;
    }
}

/* Drive the mpi-ws idle wait: schedule the backoff compute events and
 * poll the mailbox fast path on each wake; exit (send None back to the
 * worker, which re-runs a full Python idle iteration) as soon as a
 * delivered message is visible.  The wait holds exactly the pure
 * loop's cadence: one event per empty poll, backoff growing
 * geometrically, reset by the worker (phase.reset()) on progress. */
static int
idle_run(IdlePhaseObject *ip, RunCtx *rc, PyObject *time_obj, int entry)
{
    switch (entry) {
    case IP_IDLE:       goto push_wait;
    case IP_WAIT:       goto check;
    default:
        PyErr_SetString(SimulationError, "fastpath: corrupt phase state");
        return -1;
    }

check:
    if (PyList_GET_SIZE(ip->pending) > 0) {
        /* MsgWorld._take_delivered fast path, inverted: heap head
         * already arrived means the worker's iprobe will pop it. */
        PyObject *head = PyList_GET_ITEM(ip->pending, 0);
        PyObject *arr;
        double at;
        if (!PyTuple_CheckExact(head) || PyTuple_GET_SIZE(head) < 1) {
            PyErr_SetString(SimulationError, "fastpath: bad mailbox");
            return -1;
        }
        arr = PyTuple_GET_ITEM(head, 0);
        at = PyFloat_AsDouble(arr);
        if (at == -1.0 && PyErr_Occurred())
            return -1;
        if (at <= rc->now)
            goto exit_msg;
    }

push_wait:
    {
        /* yield from ctx.compute(backoff); backoff grows geometrically */
        double d = ip->backoff * ip->slow;
        ip->backoff = ip->backoff * ip->backoff_factor;
        if (ip->backoff > ip->backoff_max)
            ip->backoff = ip->backoff_max;
        if (d > 0.0) {
            ip->state = IP_WAIT;
            return rc_push(rc, rc->now + d, (PyObject *)ip, Py_None);
        }
        /* Degenerate zero backoff: the pure loop would spin without
         * yielding; hand the spin to Python rather than loop in C. */
        goto exit_msg;
    }

exit_msg:
    {
        PyObject *worker = ip->worker;
        int r;
        ip->worker = NULL;
        ip->state = IP_IDLE;
        if (rc_write_now(rc, time_obj) < 0 || rc_write_seq(rc) < 0) {
            Py_DECREF(worker);
            return -1;
        }
        r = dispatch_send(rc, worker, Py_None, time_obj);
        Py_DECREF(worker);
        return r;
    }
}

/* ------------------------------------------------------------------ */
/* process dispatch                                                   */
/* ------------------------------------------------------------------ */

static int phase_start(RunCtx *rc, LockPhaseObject *ph, PyObject *worker,
                       PyObject *time_obj);
static int owner_start(RunCtx *rc, OwnerPhaseObject *op, PyObject *worker,
                       PyObject *time_obj);
static int search_start(RunCtx *rc, SearchPhaseObject *sp, PyObject *worker,
                        PyObject *time_obj);
static int idle_start(RunCtx *rc, IdlePhaseObject *ip, PyObject *worker,
                      PyObject *time_obj);

/* Send `value` into `proc` (exact Process) and wire up whatever it
 * yields next.  Precondition: sim.now and sim._seq are synced out. */
static int
dispatch_send(RunCtx *rc, PyObject *proc, PyObject *value, PyObject *time_obj)
{
    PyObject *body, *awaited = NULL;
    PySendResult sr;

    if (Py_TYPE(proc) != ProcessType) {
        PyErr_Format(SimulationError,
                     "fastpath cannot drive process of type %.100s; "
                     "run with REPRO_FASTPATH=0",
                     Py_TYPE(proc)->tp_name);
        return -1;
    }
    body = SLOT(proc, off_p_body);
    if (body == NULL) {
        PyErr_SetString(SimulationError, "fastpath: process without body");
        return -1;
    }
    sr = PyIter_Send(body, value, &awaited);
    if (sr == PYGEN_ERROR)
        return -1;
    if (sr == PYGEN_RETURN) {
        /* StopIteration: alive = False; done.succeed(result);
         * _live_processes -= 1  (same order as the pure loop). */
        PyObject *done, *r;
        Py_INCREF(Py_False);
        slot_store(proc, off_p_alive, Py_False);
        done = SLOT(proc, off_p_done);
        if (done == NULL) {
            Py_DECREF(awaited);
            PyErr_SetString(SimulationError,
                            "fastpath: process without done event");
            return -1;
        }
        r = PyObject_CallMethodObjArgs(done, s_succeed, awaited, NULL);
        Py_DECREF(awaited);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        if (rc_reload_seq(rc) < 0)
            return -1;
        return dict_add_long(rc->simdict, s_live_processes, -1);
    }
    /* PYGEN_NEXT: the body may have fired events synchronously, so the
     * Python-side _seq is authoritative again. */
    if (rc_reload_seq(rc) < 0) {
        Py_DECREF(awaited);
        return -1;
    }
    if (Py_TYPE(awaited) == TimeoutType) {
        PyObject *delay = SLOT(awaited, off_t_delay);
        PyObject *tval = SLOT(awaited, off_t_value);
        double d;
        if (delay == NULL) {
            Py_DECREF(awaited);
            PyErr_SetString(SimulationError, "fastpath: Timeout.delay unset");
            return -1;
        }
        d = PyFloat_AsDouble(delay);
        if (d == -1.0 && PyErr_Occurred()) {
            Py_DECREF(awaited);
            return -1;
        }
        {
            int r = rc_push(rc, rc->now + d, proc, tval);
            Py_DECREF(awaited);
            return r;
        }
    }
    if (Py_TYPE(awaited) == SimEventType) {
        PyObject *fired = SLOT(awaited, off_e_fired);
        int r;
        if (fired == Py_True) {
            /* Late waiter on a fired event: resume at the current time
             * (the pure loop reuses the popped time object too). */
            r = rc_push_obj(rc, time_obj, proc, SLOT(awaited, off_e_value));
        } else {
            PyObject *waiters = SLOT(awaited, off_e_waiters);
            if (waiters == NULL || !PyList_CheckExact(waiters)) {
                PyErr_SetString(SimulationError,
                                "fastpath: bad event waiter list");
                Py_DECREF(awaited);
                return -1;
            }
            r = PyList_Append(waiters, proc);
        }
        Py_DECREF(awaited);
        return r;
    }
    if (Py_TYPE(awaited) == &LockPhase_Type) {
        int r = phase_start(rc, (LockPhaseObject *)awaited, proc, time_obj);
        Py_DECREF(awaited);
        return r;
    }
    if (Py_TYPE(awaited) == &OwnerPhase_Type) {
        int r = owner_start(rc, (OwnerPhaseObject *)awaited, proc, time_obj);
        Py_DECREF(awaited);
        return r;
    }
    if (Py_TYPE(awaited) == &SearchPhase_Type) {
        int r = search_start(rc, (SearchPhaseObject *)awaited, proc, time_obj);
        Py_DECREF(awaited);
        return r;
    }
    if (Py_TYPE(awaited) == &IdlePhase_Type) {
        int r = idle_start(rc, (IdlePhaseObject *)awaited, proc, time_obj);
        Py_DECREF(awaited);
        return r;
    }
    /* subclass fallbacks, via the simulator's own Python entry points */
    {
        int is_t = PyObject_IsInstance(awaited, (PyObject *)TimeoutType);
        if (is_t < 0) {
            Py_DECREF(awaited);
            return -1;
        }
        if (is_t) {
            PyObject *delay = PyObject_GetAttrString(awaited, "delay");
            PyObject *tval, *r;
            if (delay == NULL) {
                Py_DECREF(awaited);
                return -1;
            }
            tval = PyObject_GetAttrString(awaited, "value");
            if (tval == NULL) {
                Py_DECREF(delay);
                Py_DECREF(awaited);
                return -1;
            }
            r = PyObject_CallMethodObjArgs(rc->sim, s_schedule, delay, proc,
                                           tval, NULL);
            Py_DECREF(delay);
            Py_DECREF(tval);
            Py_DECREF(awaited);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
            return rc_reload_seq(rc);
        }
    }
    {
        int is_e = PyObject_IsInstance(awaited, (PyObject *)SimEventType);
        if (is_e < 0) {
            Py_DECREF(awaited);
            return -1;
        }
        if (is_e) {
            PyObject *r = PyObject_CallMethodObjArgs(awaited, s_add_waiter,
                                                     proc, NULL);
            Py_DECREF(awaited);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
            return rc_reload_seq(rc);
        }
    }
    {
        PyObject *name = SLOT(proc, off_p_name);
        PyErr_Format(SimulationError,
                     "process %R yielded non-awaitable %R",
                     name ? name : Py_None, awaited);
        Py_DECREF(awaited);
        return -1;
    }
}

static int
phase_start(RunCtx *rc, LockPhaseObject *ph, PyObject *worker,
            PyObject *time_obj)
{
    PyObject *r;
    if (ph->worker != NULL) {
        PyErr_SetString(SimulationError,
                        "fastpath: LockPhase yielded while already running");
        return -1;
    }
    Py_INCREF(worker);
    ph->worker = worker;
    ph->state = PH_IDLE;
    /* working_phase entry bookkeeping (state timer + work-avail poke);
     * sim.now / _seq were synced before the send that yielded us. */
    r = PyObject_CallNoArgs(ph->enter_cb);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    if (rc_reload_seq(rc) < 0)
        return -1;
    return phase_run(ph, rc, time_obj, PH_IDLE);
}

static int
owner_start(RunCtx *rc, OwnerPhaseObject *op, PyObject *worker,
            PyObject *time_obj)
{
    PyObject *r;
    if (op->state != OP_IDLE) {
        /* re-entry after a service bounce: resume mid-loop */
        if (op->worker != worker) {
            PyErr_SetString(SimulationError,
                            "fastpath: OwnerPhase re-yielded by a "
                            "different worker");
            return -1;
        }
        return owner_run(op, rc, time_obj, op->state);
    }
    if (op->worker != NULL) {
        PyErr_SetString(SimulationError,
                        "fastpath: OwnerPhase yielded while already running");
        return -1;
    }
    Py_INCREF(worker);
    op->worker = worker;
    /* working_phase entry bookkeeping (state timer + entry poke);
     * sim.now / _seq were synced before the send that yielded us. */
    r = PyObject_CallNoArgs(op->enter_cb);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    if (rc_reload_seq(rc) < 0)
        return -1;
    return owner_run(op, rc, time_obj, OP_IDLE);
}

static int
search_start(RunCtx *rc, SearchPhaseObject *sp, PyObject *worker,
             PyObject *time_obj)
{
    if (sp->state != SP_IDLE) {
        /* re-entry after a steal/service bounce: resume mid-round */
        if (sp->worker != worker) {
            PyErr_SetString(SimulationError,
                            "fastpath: SearchPhase re-yielded by a "
                            "different worker");
            return -1;
        }
        return search_run(sp, rc, time_obj, sp->state);
    }
    if (sp->worker != NULL) {
        PyErr_SetString(SimulationError,
                        "fastpath: SearchPhase yielded while already running");
        return -1;
    }
    Py_INCREF(worker);
    sp->worker = worker;
    /* search_phase has no entry bookkeeping (the worker is already in
     * the SEARCHING state when it yields the phase). */
    return search_run(sp, rc, time_obj, SP_IDLE);
}

static int
idle_start(RunCtx *rc, IdlePhaseObject *ip, PyObject *worker,
           PyObject *time_obj)
{
    /* Every wait episode exits (bounces None) before the worker can
     * re-yield the phase, so a running phase here is always a bug. */
    if (ip->state != IP_IDLE || ip->worker != NULL) {
        PyErr_SetString(SimulationError,
                        "fastpath: IdlePhase yielded while already running");
        return -1;
    }
    Py_INCREF(worker);
    ip->worker = worker;
    /* The pure loop ends every idle iteration with compute(backoff)
     * unconditionally, so entry goes straight to the first wait. */
    return idle_run(ip, rc, time_obj, IP_IDLE);
}

/* ------------------------------------------------------------------ */
/* the run loop                                                       */
/* ------------------------------------------------------------------ */

static int
rc_writeback(RunCtx *rc)
{
    PyObject *v;
    int bad = 0;
    v = PyFloat_FromDouble(rc->now);
    if (v == NULL)
        return -1;
    bad |= PyDict_SetItem(rc->simdict, s_now, v) < 0;
    Py_DECREF(v);
    v = PyLong_FromLongLong(rc->nev);
    if (v == NULL)
        return -1;
    bad |= PyDict_SetItem(rc->simdict, s_events_processed, v) < 0;
    Py_DECREF(v);
    bad |= rc_write_seq(rc) < 0;
    return bad ? -1 : 0;
}

static PyObject *
fast_run(PyObject *module, PyObject *args)
{
    PyObject *sim, *until_obj = Py_None;
    PyObject *v;
    RunCtx rc;
    int has_until = 0;
    double until_d = 0.0;
    unsigned long check_ctr = 0;

    if (!configured) {
        PyErr_SetString(PyExc_RuntimeError, "fastpath core not configured");
        return NULL;
    }
    if (!PyArg_ParseTuple(args, "O|O:run", &sim, &until_obj))
        return NULL;
    memset(&rc, 0, sizeof(rc));
    rc.sim = sim;
    rc.simdict = PyObject_GenericGetDict(sim, NULL);
    if (rc.simdict == NULL)
        return NULL;
    v = PyDict_GetItemWithError(rc.simdict, s_heap);
    if (v == NULL || !PyList_CheckExact(v)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "fastpath: sim._heap missing");
        Py_DECREF(rc.simdict);
        return NULL;
    }
    Py_INCREF(v);
    rc.heap = v;
    v = PyDict_GetItemWithError(rc.simdict, s_max_events);
    if (v == NULL)
        goto badsim;
    rc.limit = PyLong_AsLongLong(v);
    if (rc.limit == -1 && PyErr_Occurred())
        goto badsim;
    v = PyDict_GetItemWithError(rc.simdict, s_events_processed);
    if (v == NULL)
        goto badsim;
    rc.nev = PyLong_AsLongLong(v);
    if (rc.nev == -1 && PyErr_Occurred())
        goto badsim;
    v = PyDict_GetItemWithError(rc.simdict, s_now);
    if (v == NULL)
        goto badsim;
    rc.now = PyFloat_AsDouble(v);
    if (rc.now == -1.0 && PyErr_Occurred())
        goto badsim;
    if (rc_reload_seq(&rc) < 0)
        goto badsim;
    if (until_obj != Py_None) {
        has_until = 1;
        until_d = PyFloat_AsDouble(until_obj);
        if (until_d == -1.0 && PyErr_Occurred())
            goto badsim;
    }

    while (PyList_GET_SIZE(rc.heap) > 0) {
        PyObject *item, *time_obj, *proc, *value;
        double t;

        if ((++check_ctr & 4095) == 0 && PyErr_CheckSignals() < 0)
            goto fail;
        if (has_until) {
            PyObject *top = PyList_GET_ITEM(rc.heap, 0);
            double t0;
            if (!PyTuple_CheckExact(top) || PyTuple_GET_SIZE(top) != 4) {
                PyErr_SetString(SimulationError,
                                "fastpath: malformed heap item");
                goto fail;
            }
            t0 = PyFloat_AsDouble(PyTuple_GET_ITEM(top, 0));
            if (t0 == -1.0 && PyErr_Occurred())
                goto fail;
            if (t0 > until_d) {
                /* Deadline reached: the pending item stays queued. */
                rc.now = until_d;
                goto done;
            }
        }
        item = heap_pop_item(rc.heap);
        if (item == NULL)
            goto fail;
        if (!PyTuple_CheckExact(item) || PyTuple_GET_SIZE(item) != 4) {
            Py_DECREF(item);
            PyErr_SetString(SimulationError, "fastpath: malformed heap item");
            goto fail;
        }
        time_obj = PyTuple_GET_ITEM(item, 0);
        proc = PyTuple_GET_ITEM(item, 2);
        value = PyTuple_GET_ITEM(item, 3);
        t = PyFloat_AsDouble(time_obj);
        if (t == -1.0 && PyErr_Occurred()) {
            Py_DECREF(item);
            goto fail;
        }

        if (proc != Py_None) {
            if (Py_TYPE(proc) == ProcessType) {
                PyObject *alive = SLOT(proc, off_p_alive);
                if (alive != Py_True) {
                    /* stale resumption of an interrupted process:
                     * dropped, never counted */
                    Py_DECREF(item);
                    continue;
                }
                rc.now = t;
                if (rc.nev >= rc.limit) {
                    rc_raise_limit(&rc, time_obj);
                    Py_DECREF(item);
                    goto fail;
                }
                rc.nev += 1;
                if (rc_write_now(&rc, time_obj) < 0
                        || rc_write_seq(&rc) < 0
                        || dispatch_send(&rc, proc, value, time_obj) < 0) {
                    Py_DECREF(item);
                    goto fail;
                }
            } else if (Py_TYPE(proc) == &LockPhase_Type) {
                LockPhaseObject *ph = (LockPhaseObject *)proc;
                rc.now = t;
                if (rc.nev >= rc.limit) {
                    rc_raise_limit(&rc, time_obj);
                    Py_DECREF(item);
                    goto fail;
                }
                rc.nev += 1;
                if (phase_run(ph, &rc, time_obj, ph->state) < 0) {
                    Py_DECREF(item);
                    goto fail;
                }
            } else if (Py_TYPE(proc) == &OwnerPhase_Type) {
                OwnerPhaseObject *op = (OwnerPhaseObject *)proc;
                rc.now = t;
                if (rc.nev >= rc.limit) {
                    rc_raise_limit(&rc, time_obj);
                    Py_DECREF(item);
                    goto fail;
                }
                rc.nev += 1;
                if (owner_run(op, &rc, time_obj, op->state) < 0) {
                    Py_DECREF(item);
                    goto fail;
                }
            } else if (Py_TYPE(proc) == &SearchPhase_Type) {
                SearchPhaseObject *sp = (SearchPhaseObject *)proc;
                rc.now = t;
                if (rc.nev >= rc.limit) {
                    rc_raise_limit(&rc, time_obj);
                    Py_DECREF(item);
                    goto fail;
                }
                rc.nev += 1;
                if (search_run(sp, &rc, time_obj, sp->state) < 0) {
                    Py_DECREF(item);
                    goto fail;
                }
            } else if (Py_TYPE(proc) == &IdlePhase_Type) {
                IdlePhaseObject *ipp = (IdlePhaseObject *)proc;
                rc.now = t;
                if (rc.nev >= rc.limit) {
                    rc_raise_limit(&rc, time_obj);
                    Py_DECREF(item);
                    goto fail;
                }
                rc.nev += 1;
                if (idle_run(ipp, &rc, time_obj, ipp->state) < 0) {
                    Py_DECREF(item);
                    goto fail;
                }
            } else {
                PyErr_Format(SimulationError,
                             "fastpath cannot drive process of type %.100s; "
                             "run with REPRO_FASTPATH=0",
                             Py_TYPE(proc)->tp_name);
                Py_DECREF(item);
                goto fail;
            }
        } else {
            rc.now = t;
            if (rc.nev >= rc.limit) {
                rc_raise_limit(&rc, time_obj);
                Py_DECREF(item);
                goto fail;
            }
            rc.nev += 1;
            if (PyTuple_CheckExact(value)) {
                if (PyTuple_GET_SIZE(value) != 3) {
                    Py_DECREF(item);
                    PyErr_SetString(PyExc_ValueError,
                                    "fastpath: malformed delayed-fire "
                                    "payload");
                    goto fail;
                }
                {
                    PyObject *ev = PyTuple_GET_ITEM(value, 0);
                    PyObject *val = PyTuple_GET_ITEM(value, 1);
                    PyObject *stag = PyTuple_GET_ITEM(value, 2);
                    if (Py_TYPE(ev) == SimEventType
                            && PyFloat_CheckExact(stag)
                            && PyFloat_AS_DOUBLE(stag) >= 0.0) {
                        /* inline SimEvent._fire */
                        double stag_d = PyFloat_AS_DOUBLE(stag);
                        PyObject *waiters = SLOT(ev, off_e_waiters);
                        Py_ssize_t wn, i;
                        int bad = 0;
                        if (waiters == NULL
                                || !PyList_CheckExact(waiters)) {
                            Py_DECREF(item);
                            PyErr_SetString(SimulationError,
                                            "fastpath: bad event waiter "
                                            "list");
                            goto fail;
                        }
                        Py_INCREF(Py_True);
                        slot_store(ev, off_e_fired, Py_True);
                        Py_INCREF(Py_False);
                        slot_store(ev, off_e_scheduled, Py_False);
                        Py_INCREF(val);
                        slot_store(ev, off_e_value, val);
                        wn = PyList_GET_SIZE(waiters);
                        for (i = 0; i < wn; i++) {
                            PyObject *w = PyList_GET_ITEM(waiters, i);
                            if (rc_push(&rc, rc.now + (double)i * stag_d,
                                        w, val) < 0) {
                                bad = 1;
                                break;
                            }
                        }
                        if (!bad && PyList_SetSlice(
                                waiters, 0, PyList_GET_SIZE(waiters),
                                NULL) < 0)
                            bad = 1;
                        if (bad) {
                            Py_DECREF(item);
                            goto fail;
                        }
                    } else {
                        /* unusual event/stagger: defer to Python */
                        PyObject *r;
                        if (rc_write_now(&rc, time_obj) < 0
                                || rc_write_seq(&rc) < 0) {
                            Py_DECREF(item);
                            goto fail;
                        }
                        r = PyObject_CallMethodObjArgs(ev, s_fire_m, val,
                                                       stag, NULL);
                        if (r == NULL || rc_reload_seq(&rc) < 0) {
                            Py_XDECREF(r);
                            Py_DECREF(item);
                            goto fail;
                        }
                        Py_DECREF(r);
                    }
                }
            } else {
                /* bare callback (_call_at) */
                PyObject *r;
                if (rc_write_now(&rc, time_obj) < 0
                        || rc_write_seq(&rc) < 0) {
                    Py_DECREF(item);
                    goto fail;
                }
                r = PyObject_CallNoArgs(value);
                if (r == NULL || rc_reload_seq(&rc) < 0) {
                    Py_XDECREF(r);
                    Py_DECREF(item);
                    goto fail;
                }
                Py_DECREF(r);
            }
        }
        Py_DECREF(item);
    }

done:
    if (rc_writeback(&rc) < 0)
        goto badsim;
    Py_DECREF(rc.heap);
    Py_DECREF(rc.simdict);
    return PyFloat_FromDouble(rc.now);

fail:
    {
        PyObject *et, *ev, *tb;
        PyErr_Fetch(&et, &ev, &tb);
        if (rc_writeback(&rc) < 0)
            PyErr_Clear();
        PyErr_Restore(et, ev, tb);
    }
badsim:
    Py_XDECREF(rc.heap);
    Py_DECREF(rc.simdict);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* standalone batch_expand binding                                    */
/* ------------------------------------------------------------------ */

static PyObject *
py_batch_expand(PyObject *module, PyObject *args)
{
    PyObject *kid_map, *children_fb, *local;
    long long limit, thresh, n = 0, pushed = 0;
    if (!PyArg_ParseTuple(args, "OOOLL:batch_expand", &kid_map,
                          &children_fb, &local, &limit, &thresh))
        return NULL;
    if (!PyDict_CheckExact(kid_map) || !PyList_CheckExact(local)) {
        PyErr_SetString(PyExc_TypeError,
                        "batch_expand expects (dict, callable, list)");
        return NULL;
    }
    if (c_batch_expand(kid_map, children_fb, local, limit, thresh,
                       &n, &pushed) < 0)
        return NULL;
    return Py_BuildValue("LL", n, pushed);
}

/* ------------------------------------------------------------------ */
/* LockPhase type                                                     */
/* ------------------------------------------------------------------ */

static int
LockPhase_init(LockPhaseObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "sim", "local", "shared", "shared_append", "shared_pop", "stack",
        "st_dict", "wa", "fifo", "queue", "queue_append", "queue_popleft",
        "ev_name", "enter_cb", "exit_cb", "kid_map", "children_fb",
        "barrier_dict", "visit_costs", "lock_to", "unlock_to",
        "reset_cost", "home_occupancy", "chunk", "thresh", "limit", NULL};
    PyObject *sim, *local, *shared, *shared_append, *shared_pop, *stack,
        *st_dict, *wa, *fifo, *queue, *queue_append, *queue_popleft,
        *ev_name, *enter_cb, *exit_cb, *kid_map, *children_fb,
        *barrier_dict, *visit_costs;
    double lock_to, unlock_to, reset_cost, home_occupancy;
    long long chunk, thresh, limit;
    PyObject *fast = NULL;
    Py_ssize_t nvt, i;

    if (!configured) {
        PyErr_SetString(PyExc_RuntimeError, "fastpath core not configured");
        return -1;
    }
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "OOOOOOOOOOOOOOOOOOOddddLLL:LockPhase", kwlist,
            &sim, &local, &shared, &shared_append, &shared_pop, &stack,
            &st_dict, &wa, &fifo, &queue, &queue_append, &queue_popleft,
            &ev_name, &enter_cb, &exit_cb, &kid_map, &children_fb,
            &barrier_dict, &visit_costs, &lock_to, &unlock_to,
            &reset_cost, &home_occupancy, &chunk, &thresh, &limit))
        return -1;
    if (!PyList_CheckExact(local) || !PyDict_CheckExact(kid_map)
            || !PyDict_CheckExact(st_dict)
            || (barrier_dict != Py_None
                && !PyDict_CheckExact(barrier_dict))) {
        PyErr_SetString(PyExc_TypeError, "LockPhase: bad container types");
        return -1;
    }
    fast = PySequence_Fast(visit_costs, "visit_costs must be a sequence");
    if (fast == NULL)
        return -1;
    nvt = PySequence_Fast_GET_SIZE(fast);
    if (nvt < limit + 1 || limit < 1 || chunk < 1 || thresh < 1) {
        Py_DECREF(fast);
        PyErr_SetString(PyExc_ValueError, "LockPhase: bad phase bounds");
        return -1;
    }
    self->vt = PyMem_Malloc((size_t)nvt * sizeof(double));
    if (self->vt == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return -1;
    }
    for (i = 0; i < nvt; i++) {
        double d = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(fast, i));
        if (d == -1.0 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        self->vt[i] = d;
    }
    Py_DECREF(fast);

#define PH_SET(field, obj) do { Py_INCREF(obj); self->field = (obj); } while (0)
    PH_SET(sim, sim);
    PH_SET(local, local);
    PH_SET(shared, shared);
    PH_SET(shared_append, shared_append);
    PH_SET(shared_pop, shared_pop);
    PH_SET(stack, stack);
    PH_SET(st_dict, st_dict);
    PH_SET(wa, wa);
    PH_SET(fifo, fifo);
    PH_SET(queue, queue);
    PH_SET(queue_append, queue_append);
    PH_SET(queue_popleft, queue_popleft);
    PH_SET(ev_name, ev_name);
    PH_SET(enter_cb, enter_cb);
    PH_SET(exit_cb, exit_cb);
    PH_SET(kid_map, kid_map);
    PH_SET(children_fb, children_fb);
#undef PH_SET
    if (barrier_dict == Py_None) {
        self->barrier_dict = NULL;
    } else {
        Py_INCREF(barrier_dict);
        self->barrier_dict = barrier_dict;
    }
    self->lock_to = lock_to;
    self->unlock_to = unlock_to;
    self->reset_cost = reset_cost;
    self->home_occupancy = home_occupancy;
    self->chunk = chunk;
    self->thresh = thresh;
    self->limit = limit;
    self->worker = NULL;
    self->state = PH_IDLE;
    self->substate = SUB_RELEASE;
    return 0;
}

static int
LockPhase_traverse(LockPhaseObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->local);
    Py_VISIT(self->shared);
    Py_VISIT(self->shared_append);
    Py_VISIT(self->shared_pop);
    Py_VISIT(self->stack);
    Py_VISIT(self->st_dict);
    Py_VISIT(self->wa);
    Py_VISIT(self->fifo);
    Py_VISIT(self->queue);
    Py_VISIT(self->queue_append);
    Py_VISIT(self->queue_popleft);
    Py_VISIT(self->ev_name);
    Py_VISIT(self->enter_cb);
    Py_VISIT(self->exit_cb);
    Py_VISIT(self->kid_map);
    Py_VISIT(self->children_fb);
    Py_VISIT(self->barrier_dict);
    Py_VISIT(self->worker);
    return 0;
}

static int
LockPhase_clear(LockPhaseObject *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->local);
    Py_CLEAR(self->shared);
    Py_CLEAR(self->shared_append);
    Py_CLEAR(self->shared_pop);
    Py_CLEAR(self->stack);
    Py_CLEAR(self->st_dict);
    Py_CLEAR(self->wa);
    Py_CLEAR(self->fifo);
    Py_CLEAR(self->queue);
    Py_CLEAR(self->queue_append);
    Py_CLEAR(self->queue_popleft);
    Py_CLEAR(self->ev_name);
    Py_CLEAR(self->enter_cb);
    Py_CLEAR(self->exit_cb);
    Py_CLEAR(self->kid_map);
    Py_CLEAR(self->children_fb);
    Py_CLEAR(self->barrier_dict);
    Py_CLEAR(self->worker);
    return 0;
}

static void
LockPhase_dealloc(LockPhaseObject *self)
{
    PyObject_GC_UnTrack(self);
    (void)LockPhase_clear(self);
    PyMem_Free(self->vt);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
LockPhase_get_running(LockPhaseObject *self, void *closure)
{
    return PyBool_FromLong(self->worker != NULL);
}

static PyGetSetDef LockPhase_getset[] = {
    {"running", (getter)LockPhase_get_running, NULL,
     "True while a worker is inside this fused phase", NULL},
    {NULL}
};

static PyTypeObject LockPhase_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.fastpath._core.LockPhase",
    .tp_basicsize = sizeof(LockPhaseObject),
    .tp_dealloc = (destructor)LockPhase_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Fused working-phase state machine for LockBasedAlgorithm",
    .tp_traverse = (traverseproc)LockPhase_traverse,
    .tp_clear = (inquiry)LockPhase_clear,
    .tp_getset = LockPhase_getset,
    .tp_init = (initproc)LockPhase_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* OwnerPhase type                                                    */
/* ------------------------------------------------------------------ */

static int
OwnerPhase_init(OwnerPhaseObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "sim", "local", "shared", "shared_append", "shared_pop", "stack",
        "st_dict", "wa", "no_work", "req_slot", "poll", "pending",
        "enter_cb", "exit_cb", "kid_map", "children_fb", "visit_costs",
        "chunk", "thresh", "limit", NULL};
    PyObject *sim, *local, *shared, *shared_append, *shared_pop, *stack,
        *st_dict, *wa, *no_work, *req_slot, *poll, *pending,
        *enter_cb, *exit_cb, *kid_map, *children_fb, *visit_costs;
    long long chunk, thresh, limit;
    PyObject *fast = NULL;
    Py_ssize_t nvt, i;

    if (!configured) {
        PyErr_SetString(PyExc_RuntimeError, "fastpath core not configured");
        return -1;
    }
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "OOOOOOOOOOOOOOOOOLLL:OwnerPhase", kwlist,
            &sim, &local, &shared, &shared_append, &shared_pop, &stack,
            &st_dict, &wa, &no_work, &req_slot, &poll, &pending,
            &enter_cb, &exit_cb, &kid_map, &children_fb, &visit_costs,
            &chunk, &thresh, &limit))
        return -1;
    if (!PyList_CheckExact(local) || !PyDict_CheckExact(kid_map)
            || !PyDict_CheckExact(st_dict)
            || (poll != Py_None && !PyList_CheckExact(pending))) {
        PyErr_SetString(PyExc_TypeError, "OwnerPhase: bad container types");
        return -1;
    }
    fast = PySequence_Fast(visit_costs, "visit_costs must be a sequence");
    if (fast == NULL)
        return -1;
    nvt = PySequence_Fast_GET_SIZE(fast);
    if (nvt < limit + 1 || limit < 1 || chunk < 1 || thresh < 1) {
        Py_DECREF(fast);
        PyErr_SetString(PyExc_ValueError, "OwnerPhase: bad phase bounds");
        return -1;
    }
    self->vt = PyMem_Malloc((size_t)nvt * sizeof(double));
    if (self->vt == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return -1;
    }
    for (i = 0; i < nvt; i++) {
        double d = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(fast, i));
        if (d == -1.0 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        self->vt[i] = d;
    }
    Py_DECREF(fast);

#define OP_SET(field, obj) \
    do { Py_INCREF(obj); self->field = (obj); } while (0)
#define OP_SET_OPT(field, obj) \
    do { \
        if ((obj) == Py_None) { \
            self->field = NULL; \
        } else { \
            Py_INCREF(obj); \
            self->field = (obj); \
        } \
    } while (0)
    OP_SET(sim, sim);
    OP_SET(local, local);
    OP_SET(shared, shared);
    OP_SET(shared_append, shared_append);
    OP_SET(shared_pop, shared_pop);
    OP_SET(stack, stack);
    OP_SET(st_dict, st_dict);
    OP_SET_OPT(wa, wa);
    OP_SET(no_work, no_work);
    OP_SET_OPT(req_slot, req_slot);
    OP_SET_OPT(poll, poll);
    OP_SET_OPT(pending, pending);
    OP_SET(enter_cb, enter_cb);
    OP_SET(exit_cb, exit_cb);
    OP_SET(kid_map, kid_map);
    OP_SET(children_fb, children_fb);
#undef OP_SET
#undef OP_SET_OPT
    self->chunk = chunk;
    self->thresh = thresh;
    self->limit = limit;
    self->worker = NULL;
    self->state = OP_IDLE;
    return 0;
}

static int
OwnerPhase_traverse(OwnerPhaseObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->local);
    Py_VISIT(self->shared);
    Py_VISIT(self->shared_append);
    Py_VISIT(self->shared_pop);
    Py_VISIT(self->stack);
    Py_VISIT(self->st_dict);
    Py_VISIT(self->wa);
    Py_VISIT(self->no_work);
    Py_VISIT(self->req_slot);
    Py_VISIT(self->poll);
    Py_VISIT(self->pending);
    Py_VISIT(self->enter_cb);
    Py_VISIT(self->exit_cb);
    Py_VISIT(self->kid_map);
    Py_VISIT(self->children_fb);
    Py_VISIT(self->worker);
    return 0;
}

static int
OwnerPhase_clear(OwnerPhaseObject *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->local);
    Py_CLEAR(self->shared);
    Py_CLEAR(self->shared_append);
    Py_CLEAR(self->shared_pop);
    Py_CLEAR(self->stack);
    Py_CLEAR(self->st_dict);
    Py_CLEAR(self->wa);
    Py_CLEAR(self->no_work);
    Py_CLEAR(self->req_slot);
    Py_CLEAR(self->poll);
    Py_CLEAR(self->pending);
    Py_CLEAR(self->enter_cb);
    Py_CLEAR(self->exit_cb);
    Py_CLEAR(self->kid_map);
    Py_CLEAR(self->children_fb);
    Py_CLEAR(self->worker);
    return 0;
}

static void
OwnerPhase_dealloc(OwnerPhaseObject *self)
{
    PyObject_GC_UnTrack(self);
    (void)OwnerPhase_clear(self);
    PyMem_Free(self->vt);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
OwnerPhase_get_running(OwnerPhaseObject *self, void *closure)
{
    return PyBool_FromLong(self->worker != NULL);
}

static PyGetSetDef OwnerPhase_getset[] = {
    {"running", (getter)OwnerPhase_get_running, NULL,
     "True while a worker is inside this fused phase", NULL},
    {NULL}
};

static PyTypeObject OwnerPhase_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.fastpath._core.OwnerPhase",
    .tp_basicsize = sizeof(OwnerPhaseObject),
    .tp_dealloc = (destructor)OwnerPhase_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Fused owner-only working phase (upc-distmem / mpi-ws)",
    .tp_traverse = (traverseproc)OwnerPhase_traverse,
    .tp_clear = (inquiry)OwnerPhase_clear,
    .tp_getset = OwnerPhase_getset,
    .tp_init = (initproc)OwnerPhase_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* SearchPhase type                                                   */
/* ------------------------------------------------------------------ */

static int
SearchPhase_init(SearchPhaseObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "sim", "st_dict", "cycle", "row", "slots", "req_slot",
        "backoff_min", "backoff_factor", "backoff_max", "slow",
        "persist", "segments", "getrandbits", NULL};
    PyObject *sim, *st_dict, *cycle, *row, *slots, *req_slot;
    PyObject *segments = Py_None, *getrandbits = Py_None;
    double backoff_min, backoff_factor, backoff_max, slow;
    int persist;

    if (!configured) {
        PyErr_SetString(PyExc_RuntimeError, "fastpath core not configured");
        return -1;
    }
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "OOOOOOddddp|OO:SearchPhase", kwlist,
            &sim, &st_dict, &cycle, &row, &slots, &req_slot,
            &backoff_min, &backoff_factor, &backoff_max, &slow, &persist,
            &segments, &getrandbits))
        return -1;
    if (!PyDict_CheckExact(st_dict) || !PyList_CheckExact(row)
            || !PyList_CheckExact(slots) || !PyCallable_Check(cycle)) {
        PyErr_SetString(PyExc_TypeError, "SearchPhase: bad argument types");
        return -1;
    }
    if (segments != Py_None) {
        Py_ssize_t si;
        if (!PyList_CheckExact(segments) || !PyCallable_Check(getrandbits)) {
            PyErr_SetString(PyExc_TypeError,
                            "SearchPhase: segments must be a list of lists "
                            "with a getrandbits callable");
            return -1;
        }
        for (si = 0; si < PyList_GET_SIZE(segments); si++) {
            if (!PyList_CheckExact(PyList_GET_ITEM(segments, si))) {
                PyErr_SetString(PyExc_TypeError,
                                "SearchPhase: segments must be a list of "
                                "lists");
                return -1;
            }
        }
    }
#define SP_SET(field, obj) \
    do { Py_INCREF(obj); self->field = (obj); } while (0)
    SP_SET(sim, sim);
    SP_SET(st_dict, st_dict);
    SP_SET(cycle, cycle);
    SP_SET(row, row);
    SP_SET(slots, slots);
#undef SP_SET
    if (req_slot == Py_None) {
        self->req_slot = NULL;
    } else {
        Py_INCREF(req_slot);
        self->req_slot = req_slot;
    }
    if (segments == Py_None) {
        self->segments = NULL;
        self->getrandbits = NULL;
    } else {
        Py_INCREF(segments);
        self->segments = segments;
        Py_INCREF(getrandbits);
        self->getrandbits = getrandbits;
    }
    self->backoff_min = backoff_min;
    self->backoff_factor = backoff_factor;
    self->backoff_max = backoff_max;
    self->slow = slow;
    self->persist = persist;
    self->victims = NULL;
    self->idx = 0;
    self->cur_victim = 0;
    self->cost_acc = 0.0;
    self->backoff = backoff_min;
    self->probes_acc = 0;
    self->any_working = 0;
    self->worker = NULL;
    self->state = SP_IDLE;
    return 0;
}

static int
SearchPhase_traverse(SearchPhaseObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->st_dict);
    Py_VISIT(self->cycle);
    Py_VISIT(self->segments);
    Py_VISIT(self->getrandbits);
    Py_VISIT(self->row);
    Py_VISIT(self->slots);
    Py_VISIT(self->req_slot);
    Py_VISIT(self->victims);
    Py_VISIT(self->worker);
    return 0;
}

static int
SearchPhase_clear(SearchPhaseObject *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->st_dict);
    Py_CLEAR(self->cycle);
    Py_CLEAR(self->segments);
    Py_CLEAR(self->getrandbits);
    Py_CLEAR(self->row);
    Py_CLEAR(self->slots);
    Py_CLEAR(self->req_slot);
    Py_CLEAR(self->victims);
    Py_CLEAR(self->worker);
    return 0;
}

static void
SearchPhase_dealloc(SearchPhaseObject *self)
{
    PyObject_GC_UnTrack(self);
    (void)SearchPhase_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
SearchPhase_abort(SearchPhaseObject *self, PyObject *Py_UNUSED(ignored))
{
    /* Successful steal: the worker returns to its main loop instead of
     * re-yielding, so reset the phase for its next search episode.
     * (probes_acc is always flushed before a bounce, so no counters
     * are lost here.) */
    Py_CLEAR(self->victims);
    Py_CLEAR(self->worker);
    self->probes_acc = 0;
    self->cost_acc = 0.0;
    self->state = SP_IDLE;
    Py_RETURN_NONE;
}

static PyMethodDef SearchPhase_methods[] = {
    {"abort", (PyCFunction)SearchPhase_abort, METH_NOARGS,
     "Reset the phase after a successful steal (worker will not "
     "re-yield it)"},
    {NULL, NULL, 0, NULL}
};

static PyObject *
SearchPhase_get_running(SearchPhaseObject *self, void *closure)
{
    return PyBool_FromLong(self->worker != NULL);
}

static PyGetSetDef SearchPhase_getset[] = {
    {"running", (getter)SearchPhase_get_running, NULL,
     "True while a worker is inside this fused phase", NULL},
    {NULL}
};

static PyTypeObject SearchPhase_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.fastpath._core.SearchPhase",
    .tp_basicsize = sizeof(SearchPhaseObject),
    .tp_dealloc = (destructor)SearchPhase_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Fused polling search phase (lock-based / upc-distmem)",
    .tp_traverse = (traverseproc)SearchPhase_traverse,
    .tp_clear = (inquiry)SearchPhase_clear,
    .tp_methods = SearchPhase_methods,
    .tp_getset = SearchPhase_getset,
    .tp_init = (initproc)SearchPhase_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* IdlePhase type                                                     */
/* ------------------------------------------------------------------ */

static int
IdlePhase_init(IdlePhaseObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "sim", "pending", "backoff_min", "backoff_factor", "backoff_max",
        "slow", NULL};
    PyObject *sim, *pending;
    double backoff_min, backoff_factor, backoff_max, slow;

    if (!configured) {
        PyErr_SetString(PyExc_RuntimeError, "fastpath core not configured");
        return -1;
    }
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "OOdddd:IdlePhase", kwlist,
            &sim, &pending, &backoff_min, &backoff_factor, &backoff_max,
            &slow))
        return -1;
    if (!PyList_CheckExact(pending)) {
        PyErr_SetString(PyExc_TypeError, "IdlePhase: bad argument types");
        return -1;
    }
    Py_INCREF(sim);
    self->sim = sim;
    Py_INCREF(pending);
    self->pending = pending;
    self->backoff_min = backoff_min;
    self->backoff_factor = backoff_factor;
    self->backoff_max = backoff_max;
    self->slow = slow;
    self->backoff = backoff_min;
    self->worker = NULL;
    self->state = IP_IDLE;
    return 0;
}

static int
IdlePhase_traverse(IdlePhaseObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->pending);
    Py_VISIT(self->worker);
    return 0;
}

static int
IdlePhase_clear(IdlePhaseObject *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->pending);
    Py_CLEAR(self->worker);
    return 0;
}

static void
IdlePhase_dealloc(IdlePhaseObject *self)
{
    PyObject_GC_UnTrack(self);
    (void)IdlePhase_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
IdlePhase_reset(IdlePhaseObject *self, PyObject *Py_UNUSED(ignored))
{
    /* The idle iteration made progress: backoff restarts at the floor,
     * exactly the pure loop's `if progressed: backoff = bmin`. */
    self->backoff = self->backoff_min;
    Py_RETURN_NONE;
}

static PyMethodDef IdlePhase_methods[] = {
    {"reset", (PyCFunction)IdlePhase_reset, METH_NOARGS,
     "Restart the backoff at its floor (idle iteration progressed)"},
    {NULL, NULL, 0, NULL}
};

static PyObject *
IdlePhase_get_running(IdlePhaseObject *self, void *closure)
{
    return PyBool_FromLong(self->worker != NULL);
}

static PyGetSetDef IdlePhase_getset[] = {
    {"running", (getter)IdlePhase_get_running, NULL,
     "True while a worker is inside this fused phase", NULL},
    {NULL}
};

static PyTypeObject IdlePhase_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.fastpath._core.IdlePhase",
    .tp_basicsize = sizeof(IdlePhaseObject),
    .tp_dealloc = (destructor)IdlePhase_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Fused mpi-ws idle wait (backoff polls between messages)",
    .tp_traverse = (traverseproc)IdlePhase_traverse,
    .tp_clear = (inquiry)IdlePhase_clear,
    .tp_methods = IdlePhase_methods,
    .tp_getset = IdlePhase_getset,
    .tp_init = (initproc)IdlePhase_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* configure                                                          */
/* ------------------------------------------------------------------ */

static PyObject *
py_configure(PyObject *module, PyObject *args)
{
    PyObject *timeout_cls, *event_cls, *process_cls, *fifo_cls,
        *stack_cls, *shared_cls, *sim_error, *cancelled;
    if (!PyArg_ParseTuple(args, "OOOOOOOO:configure", &timeout_cls,
                          &event_cls, &process_cls, &fifo_cls, &stack_cls,
                          &shared_cls, &sim_error, &cancelled))
        return NULL;
    if (!PyType_Check(timeout_cls) || !PyType_Check(event_cls)
            || !PyType_Check(process_cls) || !PyType_Check(fifo_cls)
            || !PyType_Check(stack_cls) || !PyType_Check(shared_cls)) {
        PyErr_SetString(PyExc_TypeError, "configure expects classes");
        return NULL;
    }
#define RES(var, cls, name) \
    do { \
        var = resolve_slot(cls, name); \
        if (var < 0) \
            return NULL; \
    } while (0)
    RES(off_t_delay, timeout_cls, "delay");
    RES(off_t_value, timeout_cls, "value");
    RES(off_e_fired, event_cls, "fired");
    RES(off_e_scheduled, event_cls, "scheduled");
    RES(off_e_value, event_cls, "value");
    RES(off_e_waiters, event_cls, "_waiters");
    RES(off_p_body, process_cls, "body");
    RES(off_p_done, process_cls, "done");
    RES(off_p_alive, process_cls, "alive");
    RES(off_p_name, process_cls, "name");
    RES(off_f_locked, fifo_cls, "locked");
    RES(off_f_queue, fifo_cls, "_queue");
    RES(off_f_acq, fifo_cls, "acquisitions");
    RES(off_f_cacq, fifo_cls, "contended_acquisitions");
    RES(off_f_busy, fifo_cls, "busy_time");
    RES(off_f_acqat, fifo_cls, "_acquired_at");
    RES(off_st_pushes, stack_cls, "pushes");
    RES(off_st_pops, stack_cls, "pops");
    RES(off_st_released, stack_cls, "released_nodes");
    RES(off_st_reacquired, stack_cls, "reacquired_nodes");
    RES(off_w_value, shared_cls, "value");
    RES(off_w_writes, shared_cls, "writes");
#undef RES
    Py_INCREF(timeout_cls);
    Py_XSETREF(TimeoutType, (PyTypeObject *)timeout_cls);
    Py_INCREF(event_cls);
    Py_XSETREF(SimEventType, (PyTypeObject *)event_cls);
    Py_INCREF(process_cls);
    Py_XSETREF(ProcessType, (PyTypeObject *)process_cls);
    Py_INCREF(sim_error);
    Py_XSETREF(SimulationError, sim_error);
    Py_INCREF(cancelled);
    Py_XSETREF(Cancelled, cancelled);
    configured = 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* module                                                             */
/* ------------------------------------------------------------------ */

static PyMethodDef core_methods[] = {
    {"configure", py_configure, METH_VARARGS,
     "configure(Timeout, SimEvent, Process, FifoLock, SplitStack, "
     "SharedVar, SimulationError, cancelled) -> None"},
    {"run", fast_run, METH_VARARGS,
     "run(sim, until=None) -> float -- the compiled Simulator.run loop"},
    {"batch_expand", py_batch_expand, METH_VARARGS,
     "batch_expand(kid_map, children, local, limit, thresh) -> (n, pushed)"},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef core_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.fastpath._core",
    .m_doc = "Compiled event-dispatch backend (see repro.fastpath)",
    .m_size = -1,
    .m_methods = core_methods,
};

PyMODINIT_FUNC
PyInit__core(void)
{
    PyObject *m;
#define INTERN(var, text) \
    do { \
        var = PyUnicode_InternFromString(text); \
        if (var == NULL) \
            return NULL; \
    } while (0)
    INTERN(s_now, "now");
    INTERN(s_seq, "_seq");
    INTERN(s_events_processed, "events_processed");
    INTERN(s_live_processes, "_live_processes");
    INTERN(s_heap, "_heap");
    INTERN(s_max_events, "max_events");
    INTERN(s_limit_error, "_limit_error");
    INTERN(s_succeed, "succeed");
    INTERN(s_schedule, "_schedule");
    INTERN(s_add_waiter, "add_waiter");
    INTERN(s_fire_m, "_fire");
    INTERN(s_nodes_visited, "nodes_visited");
    INTERN(s_reacquires, "reacquires");
    INTERN(s_releases, "releases");
    INTERN(s_cancels, "cancels");
    INTERN(s_waiters_key, "_waiters");
    INTERN(s_probes, "probes");
#undef INTERN
    if (PyType_Ready(&LockPhase_Type) < 0)
        return NULL;
    if (PyType_Ready(&OwnerPhase_Type) < 0)
        return NULL;
    if (PyType_Ready(&SearchPhase_Type) < 0)
        return NULL;
    if (PyType_Ready(&IdlePhase_Type) < 0)
        return NULL;
    m = PyModule_Create(&core_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&LockPhase_Type);
    if (PyModule_AddObject(m, "LockPhase", (PyObject *)&LockPhase_Type) < 0) {
        Py_DECREF(&LockPhase_Type);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&OwnerPhase_Type);
    if (PyModule_AddObject(m, "OwnerPhase",
                           (PyObject *)&OwnerPhase_Type) < 0) {
        Py_DECREF(&OwnerPhase_Type);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&SearchPhase_Type);
    if (PyModule_AddObject(m, "SearchPhase",
                           (PyObject *)&SearchPhase_Type) < 0) {
        Py_DECREF(&SearchPhase_Type);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&IdlePhase_Type);
    if (PyModule_AddObject(m, "IdlePhase",
                           (PyObject *)&IdlePhase_Type) < 0) {
        Py_DECREF(&IdlePhase_Type);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
