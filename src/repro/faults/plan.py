"""Deterministic fault plans.

A :class:`FaultPlan` is a frozen, hashable description of *what can go
wrong* in one run: message-level faults (drop / duplicate / delay),
timing faults (lock-holder stalls, stale-read windows, thread
slowdown), and fail-stop kills with a fixed schedule.  The plan also
carries the recovery parameters the protocols use to route around those
faults (steal timeouts, token ring timeout, heartbeat period).

Everything is driven by ``seed`` through the plan's own SplitMix64
streams (:mod:`repro.faults.rng`), so an identical ``(config, seed)``
pair reproduces the exact same fault trace -- every failure found by a
sweep is a unit test waiting to be written down.

Plans are attached to runs through :attr:`repro.ws.config.WsConfig.faults`
or the ``--faults``/``--fault-seed`` CLI flags; the spec grammar for the
latter lives in :func:`parse_fault_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import ConfigError

__all__ = ["FaultPlan", "StormSpec", "parse_fault_spec"]


#: Fault classes a storm window may burst.  ``kill`` storms carry a
#: victim *count*; the rate classes carry the in-window rate override.
_STORM_CLASSES = ("kill", "drop", "dup", "delay", "stall", "stale")


@dataclass(frozen=True)
class StormSpec:
    """One windowed fault burst: ``storm(kill:3@t=5ms..6ms)``.

    ``kill`` storms kill ``magnitude`` (an integer count of) extra
    ranks at substream-drawn times inside ``[t0, t1)``; rate-class
    storms (``drop``/``dup``/``delay``/``stall``/``stale``) raise that
    class's rate to ``magnitude`` while the simulated clock is inside
    the window (the base rate applies outside it).
    """

    category: str
    magnitude: float
    t0: float
    t1: float

    def __post_init__(self) -> None:
        if self.category not in _STORM_CLASSES:
            raise ConfigError(
                f"storm class {self.category!r} unknown "
                f"(known: {', '.join(_STORM_CLASSES)})")
        if not self.t1 > self.t0 >= 0.0:
            raise ConfigError(
                f"storm window [{self.t0}, {self.t1}) must be non-empty "
                "and non-negative")
        if self.category == "kill":
            if self.magnitude < 1 or self.magnitude != int(self.magnitude):
                raise ConfigError(
                    f"kill storm count must be a positive integer, "
                    f"got {self.magnitude}")
        elif not 0.0 <= self.magnitude <= 1.0:
            raise ConfigError(
                f"{self.category} storm rate must be in [0, 1], "
                f"got {self.magnitude}")

    @property
    def count(self) -> int:
        """Victim count (kill storms only)."""
        return int(self.magnitude)

    def describe(self) -> str:
        mag = self.count if self.category == "kill" else self.magnitude
        return f"storm({self.category}:{mag}@t={self.t0:g}..{self.t1:g})"


@dataclass(frozen=True)
class FaultPlan:
    """One run's fault model + recovery tuning (immutable, hashable)."""

    #: Seed for the fault layer's own random streams (independent of
    #: the tree seed and the simulation seed).
    seed: int = 0

    # -- message faults (two-sided messaging, i.e. mpi-ws) ------------------
    #: Probability a droppable control message vanishes in flight.
    msg_drop_rate: float = 0.0
    #: Probability a duplicable message is delivered twice.
    msg_dup_rate: float = 0.0
    #: Probability a message's arrival is delayed beyond its transit.
    msg_delay_rate: float = 0.0
    #: Upper bound on the injected extra delay (seconds, uniform).
    msg_delay_max: float = 200e-6

    # -- timing faults ------------------------------------------------------
    #: Probability a lock release stalls while still holding the lock.
    lock_stall_rate: float = 0.0
    #: Stall duration (seconds).
    lock_stall_time: float = 50e-6
    #: Probability a write to a staleable shared variable leaves remote
    #: readers seeing the old value for a window.
    stale_read_rate: float = 0.0
    #: Stale-window duration (seconds).
    stale_read_window: float = 20e-6
    #: Ranks running slow (e.g. a thermally throttled node) and the
    #: common compute-time multiplier applied to them.
    slow_ranks: Tuple[int, ...] = ()
    slow_factor: float = 1.0

    # -- fail-stop faults ---------------------------------------------------
    #: Ranks to kill and the simulated times to kill them at
    #: (parallel tuples).  Rank 0 is the recovery coordinator (it owns
    #: the termination ring/barrier home) and must survive.
    kill_ranks: Tuple[int, ...] = ()
    kill_times: Tuple[float, ...] = ()

    #: Windowed fault bursts (:class:`StormSpec`): correlated failures
    #: clustered in time, e.g. a rack power event killing several ranks
    #: inside one millisecond, or a congestion episode that spikes the
    #: message-drop rate for a window.
    storms: Tuple[StormSpec, ...] = ()

    # -- recovery tuning ----------------------------------------------------
    #: Initial steal-request timeout before a thief retries elsewhere.
    steal_timeout: float = 300e-6
    #: Cap for the exponentially backed-off steal timeout.
    steal_timeout_max: float = 2400e-6
    #: Deterministic jitter fraction applied to each steal-retry
    #: doubling (0 = none, the historical schedule).  A value ``j``
    #: perturbs each doubled timeout by a substream-drawn factor in
    #: ``[1 - j/2, 1 + j/2)`` before the cap, de-synchronising thieves
    #: that timed out together during a fault storm.
    steal_retry_jitter: float = 0.0
    #: Rank 0 relaunches the termination token after this ring silence.
    ring_timeout: float = 1500e-6
    #: Heartbeat epoch period for the failure detector.
    heartbeat_period: float = 50e-6
    #: Missed epochs before a silent rank is suspected dead.
    heartbeat_miss: int = 3
    #: Period of the in-simulation conservation-ledger checker.
    check_period: float = 100e-6

    def __post_init__(self) -> None:
        for name in ("msg_drop_rate", "msg_dup_rate", "msg_delay_rate",
                     "lock_stall_rate", "stale_read_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {v}")
        for name in ("msg_delay_max", "lock_stall_time", "stale_read_window"):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be >= 0")
        for name in ("steal_timeout", "ring_timeout", "heartbeat_period",
                     "check_period"):
            if getattr(self, name) <= 0.0:
                raise ConfigError(f"{name} must be > 0")
        if self.steal_timeout_max < self.steal_timeout:
            raise ConfigError("steal_timeout_max must be >= steal_timeout")
        if self.heartbeat_miss < 1:
            raise ConfigError("heartbeat_miss must be >= 1")
        if self.slow_factor < 1.0:
            raise ConfigError(
                f"slow_factor must be >= 1 (a slowdown), got {self.slow_factor}")
        if len(self.kill_ranks) != len(self.kill_times):
            raise ConfigError(
                f"kill_ranks ({len(self.kill_ranks)}) and kill_times "
                f"({len(self.kill_times)}) must pair up")
        if len(set(self.kill_ranks)) != len(self.kill_ranks):
            raise ConfigError(f"duplicate rank in kill_ranks {self.kill_ranks}")
        for rank in self.kill_ranks + self.slow_ranks:
            if rank < 0:
                raise ConfigError(f"negative rank {rank} in fault plan")
        if 0 in self.kill_ranks:
            raise ConfigError(
                "rank 0 cannot be killed: it initiates termination "
                "(token ring / barrier home) and coordinates recovery")
        for t in self.kill_times:
            if t < 0.0:
                raise ConfigError(f"negative kill time {t}")
        if not 0.0 <= self.steal_retry_jitter <= 1.0:
            raise ConfigError(
                f"steal_retry_jitter must be in [0, 1], "
                f"got {self.steal_retry_jitter}")
        for storm in self.storms:
            if not isinstance(storm, StormSpec):
                raise ConfigError(f"storms must hold StormSpec, got {storm!r}")

    # -- derived -------------------------------------------------------------

    @property
    def has_message_faults(self) -> bool:
        return (self.msg_drop_rate > 0 or self.msg_dup_rate > 0
                or self.msg_delay_rate > 0)

    @property
    def has_kills(self) -> bool:
        return bool(self.kill_ranks) or any(
            s.category == "kill" for s in self.storms)

    @property
    def non_failstop_classes(self) -> Tuple[str, ...]:
        """Fault classes in this plan beyond fail-stop + slowdown.

        The parked idle path (``idle_strategy='park'``) supports
        fail-stop kills (scheduled or storm-burst) and slow ranks; the
        message/stall/stale classes perturb protocol state the parked
        fast path reads without re-validation, so they stay poll-only.
        """
        out = []
        if self.msg_drop_rate > 0:
            out.append("drop")
        if self.msg_dup_rate > 0:
            out.append("dup")
        if self.msg_delay_rate > 0:
            out.append("delay")
        if self.lock_stall_rate > 0:
            out.append("stall")
        if self.stale_read_rate > 0:
            out.append("stale")
        for s in self.storms:
            if s.category != "kill" and s.category not in out:
                out.append(s.category)
        return tuple(out)

    @property
    def fault_classes(self) -> Tuple[str, ...]:
        """Every fault class this plan can inject (spec-key names).

        The non-fail-stop classes plus ``kill`` (scheduled or
        storm-burst) and ``slow`` (throttled ranks).  Algorithms
        declare the classes they tolerate (``fault_classes`` class
        attribute on :class:`~repro.ws.algorithms.base.AlgorithmBase`)
        and the sweep tooling filters (variant, plan) cells on this
        same property, so both layers agree on what a plan contains.
        """
        out = list(self.non_failstop_classes)
        if self.has_kills:
            out.append("kill")
        if self.slow_ranks:
            out.append("slow")
        return tuple(out)

    @property
    def suspect_after(self) -> float:
        """Silence needed before the failure detector suspects a rank."""
        return self.heartbeat_period * self.heartbeat_miss

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


# -- CLI spec grammar ---------------------------------------------------------

_RATE_KEYS = {
    "drop": "msg_drop_rate",
    "dup": "msg_dup_rate",
    "delay": "msg_delay_rate",
    "stall": "lock_stall_rate",
    "stale": "stale_read_rate",
}
_TIME_KEYS = {
    "delay-max": "msg_delay_max",
    "stall-time": "lock_stall_time",
    "stale-window": "stale_read_window",
    "timeout": "steal_timeout",
    "timeout-max": "steal_timeout_max",
    "ring-timeout": "ring_timeout",
    "heartbeat": "heartbeat_period",
}


#: Unit suffixes accepted on time values (``kill=3@2ms``, ``timeout=500us``).
_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}


def _parse_float(key: str, raw: str) -> float:
    scale = 1.0
    text = raw
    for suffix in ("ns", "us", "ms", "s"):
        if text.endswith(suffix):
            head = text[: -len(suffix)]
            # Don't strip the exponent 's'... there is none; but guard
            # against bare units and scientific notation like '2e-6'.
            if head and not head.endswith(("e", "E", "+", "-")):
                scale = _UNITS[suffix]
                text = head
            break
    try:
        return float(text) * scale
    except ValueError:
        raise ConfigError(f"fault spec: {key}={raw!r} is not a number") from None


def _parse_storm(item: str) -> StormSpec:
    """Parse ``storm(CLASS:MAG@T0..T1)`` (``t=`` before T0 optional)."""
    body = item[len("storm("):]
    if not body.endswith(")"):
        raise ConfigError(f"fault spec: unterminated storm item {item!r}")
    body = body[:-1]
    cat, sep, rest = body.partition(":")
    if not sep:
        raise ConfigError(
            f"fault spec: storm {item!r} must be "
            "storm(CLASS:MAGNITUDE@T0..T1), e.g. storm(kill:3@t=5ms..6ms)")
    mag_s, sep, window = rest.partition("@")
    if not sep:
        raise ConfigError(
            f"fault spec: storm {item!r} is missing its @T0..T1 window")
    window = window.strip()
    if window.startswith("t="):
        window = window[2:]
    t0_s, sep, t1_s = window.partition("..")
    if not sep:
        raise ConfigError(
            f"fault spec: storm window {window!r} must be T0..T1")
    return StormSpec(category=cat.strip(),
                     magnitude=_parse_float("storm", mag_s.strip()),
                     t0=_parse_float("storm", t0_s.strip()),
                     t1=_parse_float("storm", t1_s.strip()))


def _parse_at(key: str, raw: str) -> Tuple[int, float]:
    """Parse ``RANK@VALUE`` (kill=3@0.002, slow=2@4)."""
    rank_s, sep, val_s = raw.partition("@")
    if not sep:
        raise ConfigError(
            f"fault spec: {key}={raw!r} must be RANK@VALUE (e.g. {key}=3@0.002)")
    try:
        rank = int(rank_s)
    except ValueError:
        raise ConfigError(
            f"fault spec: {key} rank {rank_s!r} is not an integer") from None
    return rank, _parse_float(key, val_s)


def parse_fault_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Build a :class:`FaultPlan` from a compact CLI spec.

    Grammar: comma-separated ``key=value`` items, e.g.::

        drop=0.05,dup=0.02,delay=0.1
        kill=3@0.002,kill=5@0.004
        stall=0.05,stall-time=100e-6,slow=2@4
        storm(kill:3@t=5ms..6ms),storm(drop:0.3@2ms..3ms)

    Keys: ``drop``/``dup``/``delay``/``stall``/``stale`` (rates),
    ``delay-max``/``stall-time``/``stale-window``/``timeout``/
    ``timeout-max``/``ring-timeout``/``heartbeat`` (seconds),
    ``retry-jitter`` (fraction in [0, 1]), ``kill=RANK@TIME`` and
    ``slow=RANK@FACTOR`` (repeatable), and
    ``storm(CLASS:MAGNITUDE@T0..T1)`` windowed bursts (repeatable;
    ``kill`` takes a victim count, rate classes take the in-window
    rate; the ``t=`` prefix before T0 is optional).
    """
    kwargs: dict = {"seed": seed}
    kills: list = []
    slows: list = []
    storms: list = []
    slow_factor: Optional[float] = None
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if item.startswith("storm("):
            storms.append(_parse_storm(item))
            continue
        key, sep, raw = item.partition("=")
        if not sep:
            raise ConfigError(f"fault spec item {item!r} is not key=value")
        key = key.strip()
        raw = raw.strip()
        if key in _RATE_KEYS:
            kwargs[_RATE_KEYS[key]] = _parse_float(key, raw)
        elif key in _TIME_KEYS:
            kwargs[_TIME_KEYS[key]] = _parse_float(key, raw)
        elif key == "retry-jitter":
            kwargs["steal_retry_jitter"] = _parse_float(key, raw)
        elif key == "kill":
            kills.append(_parse_at(key, raw))
        elif key == "slow":
            rank, factor = _parse_at(key, raw)
            slows.append(rank)
            if slow_factor is not None and factor != slow_factor:
                raise ConfigError(
                    "fault spec: all slow= items must share one factor")
            slow_factor = factor
        else:
            known = sorted([*_RATE_KEYS, *_TIME_KEYS, "kill", "slow",
                            "retry-jitter", "storm(...)"])
            raise ConfigError(
                f"fault spec: unknown key {key!r} (known: {', '.join(known)})")
    if kills:
        kwargs["kill_ranks"] = tuple(r for r, _ in kills)
        kwargs["kill_times"] = tuple(t for _, t in kills)
    if slows:
        kwargs["slow_ranks"] = tuple(slows)
        kwargs["slow_factor"] = slow_factor
    if storms:
        kwargs["storms"] = tuple(storms)
    return FaultPlan(**kwargs)
