"""Fault-injection random stream (SplitMix64).

The fault layer must not perturb any existing random stream: the tree's
SHA-1/geometric spawn decisions and the probe orders both draw from
:mod:`repro.sim.rng`, and a fault plan with every rate at zero has to
leave those streams untouched.  So faults get their own generator -- a
SplitMix64, the same tiny mixer UTS itself offers as an engine -- with
one *named substream* per fault category.  Draws in one category
(message drops, say) then never shift the draws of another (lock
stalls), which keeps per-category behaviour stable when a plan enables
categories incrementally.
"""

from __future__ import annotations

import zlib

__all__ = ["SplitMix64", "substream"]

_MASK = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


class SplitMix64:
    """Tiny deterministic 64-bit generator (Steele et al., OOPSLA'14)."""

    __slots__ = ("_state", "draws")

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK
        #: Draws taken so far (diagnostics; lets tests prove alignment).
        self.draws = 0

    def next_u64(self) -> int:
        self._state = (self._state + _GOLDEN) & _MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
        self.draws += 1
        return z ^ (z >> 31)

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of entropy."""
        return (self.next_u64() >> 11) * (2.0 ** -53)

    def uniform(self, lo: float, hi: float) -> float:
        return lo + (hi - lo) * self.random()

    def chance(self, p: float) -> bool:
        """One Bernoulli draw (always consumes exactly one value)."""
        return self.random() < p


def substream(seed: int, category: str) -> SplitMix64:
    """An independent stream for one fault category.

    The category name is folded into the seed with a CRC so streams for
    different categories are decorrelated even for adjacent seeds.
    """
    tag = zlib.crc32(category.encode("utf-8"))
    return SplitMix64((seed * 0x2545F4914F6CDD1D + tag) & _MASK)
