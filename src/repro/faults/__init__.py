"""Deterministic fault injection + recovery support.

Public surface: :class:`~repro.faults.plan.FaultPlan` (what can go
wrong, seed-driven), :func:`~repro.faults.plan.parse_fault_spec` (the
``--faults`` CLI grammar), :class:`~repro.faults.counters.FaultCounters`
(per-fault-type metrics on ``RunResult``), and
:class:`~repro.faults.runtime.FaultRuntime` (the live injector wired
into a :class:`~repro.pgas.machine.Machine`).
"""

from repro.faults.counters import FaultCounters
from repro.faults.plan import FaultPlan, StormSpec, parse_fault_spec
from repro.faults.runtime import FaultRuntime

__all__ = ["FaultPlan", "FaultCounters", "FaultRuntime", "StormSpec",
           "parse_fault_spec"]
