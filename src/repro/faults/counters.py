"""Per-fault-type counters: the fault layer's contribution to metrics.

One :class:`FaultCounters` instance per faulted run, carried on
:class:`~repro.metrics.report.RunResult`.  Every injected fault and
every recovery action increments exactly one counter here, so a test
(or the CI fault matrix) can assert not just that a run survived but
*which* mechanisms fired.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["FaultCounters"]


@dataclass
class FaultCounters:
    """Counts of injected faults and recovery actions for one run."""

    # -- injected faults ---------------------------------------------------
    #: Control messages silently discarded in flight.
    msgs_dropped: int = 0
    #: Messages delivered twice (original + late copy).
    msgs_duplicated: int = 0
    #: Messages whose arrival was pushed past the network's transit time.
    msgs_delayed: int = 0
    #: Messages addressed to an already-dead rank (discarded).
    msgs_to_dead: int = 0
    #: Extra hold time injected into lock releases.
    lock_stalls: int = 0
    #: Stale-read windows opened by writes to staleable shared variables.
    stale_windows: int = 0
    #: Remote reads that observed a stale (pre-write) value.
    stale_reads: int = 0
    #: Threads fail-stopped by the kill schedule.
    threads_killed: int = 0

    # -- recovery actions --------------------------------------------------
    #: Steal transactions abandoned after their timeout elapsed.
    steal_timeouts: int = 0
    #: Duplicate steal requests suppressed by sequence numbers.
    dup_requests_suppressed: int = 0
    #: Steal responses discarded as stale (sequence mismatch).
    stale_responses: int = 0
    #: Termination tokens relaunched after a ring timeout.
    token_relaunches: int = 0
    #: Tokens discarded because their round number was superseded.
    stale_tokens: int = 0
    #: Ranks declared dead by the heartbeat monitor.
    heartbeat_suspicions: int = 0

    # -- accounting --------------------------------------------------------
    #: Conservation-ledger assertions executed inside the simulation.
    invariant_checks: int = 0
    #: Node descriptors lost to fail-stop faults (stack + in-flight).
    lost_nodes: int = 0
    #: ... of which were on the dead rank's own stack at the kill.
    lost_nodes_on_stack: int = 0
    #: ... of which were mid-steal (open transfer or unfetched grant).
    #: Attribution is exact: every lost descriptor lands in exactly one
    #: of the two buckets, so ``lost_nodes == on_stack + in_flight``
    #: always (asserted by the in-run conservation checker).
    lost_nodes_in_flight: int = 0
    #: Total subtree size under the lost descriptors: the exact gap
    #: between the parallel count and the sequential oracle.
    lost_work: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    def nonzero(self) -> dict:
        """Only the counters that fired (for compact reports)."""
        return {k: v for k, v in self.as_dict().items() if v}
