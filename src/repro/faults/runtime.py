"""Fault-injection runtime: the live side of a :class:`FaultPlan`.

One :class:`FaultRuntime` per faulted run.  It is installed on the
machine (``machine.faults``) before the algorithm is constructed, so
every hook site -- message routing in :mod:`repro.msg.comm`, lock
release in :class:`~repro.pgas.machine.UpcContext`, staleable shared
variables, the kill watchdogs -- reaches it through one attribute test
that is ``None`` (and therefore free) on fault-free runs.

Responsibilities:

* roll injected faults from per-category SplitMix64 substreams
  (:func:`repro.faults.rng.substream`) so categories never perturb
  each other's draws;
* run the fail-stop machinery: kill watchdogs, heartbeat epochs, and
  the death bookkeeping that keeps the node-conservation ledger exact
  when a thread dies with work on its stack or in flight;
* run the in-simulation conservation checker, which asserts

      sum(stack.total_nodes)
          == sum(pushes) - sum(pops) - sum(stolen_from_me) - lost_from_stacks

  at every check period.  Every protocol transition (expand, steal,
  transfer, death accounting) preserves this ledger atomically between
  yields, so a violation is a genuine protocol bug, not a race with
  the checker.

This module must not import ``repro.ws`` at module level: it is
imported by ``repro.ws.config`` (via ``repro.faults.plan``), and a
module-level back-import would create a cycle.  The algorithm object is
injected with :meth:`attach` instead.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Optional

from repro.errors import ConfigError, ProtocolError, ThreadKilled
from repro.faults.counters import FaultCounters
from repro.faults.plan import FaultPlan
from repro.faults.rng import substream
from repro.sim.engine import Timeout

__all__ = ["FaultRuntime"]

#: ``work_avail`` sentinel (== repro.ws.algorithms.base.NO_WORK; literal
#: here to avoid the import cycle described in the module docstring).
_NO_WORK = -1


class FaultRuntime:
    """Per-run fault injector, failure detector, and loss accountant."""

    def __init__(self, plan: FaultPlan, machine) -> None:
        n = machine.n_threads
        for rank in plan.kill_ranks + plan.slow_ranks:
            if rank >= n:
                raise ConfigError(
                    f"fault plan names rank {rank} but the machine has "
                    f"only {n} thread(s)")
        self.plan = plan
        self.machine = machine
        self.counters = FaultCounters()
        self.algo = None  # injected by attach()
        # Per-category random substreams: enabling one fault category
        # never shifts another category's draws.
        seed = plan.seed
        self._drop = substream(seed, "msg.drop")
        self._dup = substream(seed, "msg.dup")
        self._delay = substream(seed, "msg.delay")
        self._stall = substream(seed, "lock.stall")
        self._stale = substream(seed, "shared.stale")
        self._retry = substream(seed, "steal.retry")
        # Storm expansion.  Kill storms draw their victims and kill
        # times from a dedicated substream at construction, so the
        # schedule is part of the plan's deterministic identity; rate
        # storms are applied as windowed overrides at roll time.
        self._rate_storms = tuple(
            s for s in plan.storms if s.category != "kill")
        kill_ranks = list(plan.kill_ranks)
        kill_times = list(plan.kill_times)
        storm_rng = substream(seed, "storm.kill")
        for s in plan.storms:
            if s.category != "kill":
                continue
            pool = [r for r in range(1, n) if r not in kill_ranks]
            if s.count > len(pool):
                raise ConfigError(
                    f"{s.describe()} wants {s.count} victim(s) but only "
                    f"{len(pool)} killable rank(s) remain (rank 0 and "
                    "already-scheduled victims are excluded)")
            for _ in range(s.count):
                victim = pool.pop(storm_rng.next_u64() % len(pool))
                kill_ranks.append(victim)
                kill_times.append(s.t0 + storm_rng.random() * (s.t1 - s.t0))
        #: Full fail-stop schedule: plan kills + expanded storm kills.
        self.kill_schedule = tuple(zip(kill_ranks, kill_times))
        #: Optional loss observer (e.g. the service workload taints
        #: tasks whose nodes died); called with every lost-node batch.
        self.on_lost = None
        # Failure-detector state.
        self.dead: set[int] = set()
        self.last_beat = [0.0] * n
        self._suspicion_seen: set[int] = set()
        # Loss accounting.  Every lost descriptor is attributed to
        # exactly one bucket -- on-stack (cleared from the corpse's
        # SplitStack, so subtracted from the conservation ledger) or
        # in-flight (already counted out of the stacks via
        # stolen_from_me, so *not* subtracted again).  The split is
        # asserted in check_conservation().
        self.lost_descriptors: List[Any] = []
        self._lost_stack_nodes = 0
        self._lost_in_flight_nodes = 0
        # Open work transfers: rank -> nodes it popped from a victim's
        # shared region but has not yet handed over (at most one per
        # rank: the transfer lives in that rank's generator frame).
        self._open_transfer: dict[int, List[Any]] = {}
        # Granted-but-unfetched steal responses: thief rank -> nodes.
        self._responses: dict[int, List[Any]] = {}
        # Thread slowdowns apply from the first instruction.
        for rank in plan.slow_ranks:
            machine.contexts[rank]._slow = plan.slow_factor

    def attach(self, algo) -> None:
        """Bind the algorithm instance (after its construction)."""
        self.algo = algo

    def _trace(self, rank: int, kind: str, detail: str = "") -> None:
        """Record an injection/recovery event (no-op when tracing is off)."""
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.emit(self.machine.sim.now, rank, kind, detail)

    @property
    def watching_deaths(self) -> bool:
        return bool(self.kill_schedule)

    def _rate(self, category: str, base: float) -> float:
        """Effective rate for ``category`` now: base, or a storm override.

        Only consulted when the plan carries rate-class storms, so
        storm-free plans keep the exact historical draw sequence.
        """
        now = self.machine.sim.now
        for s in self._rate_storms:
            if s.category == category and s.t0 <= now < s.t1:
                if s.magnitude > base:
                    base = s.magnitude
        return base

    # -- message faults ----------------------------------------------------

    def route_message(self, msg) -> List[Any]:
        """Decide a posted message's fate; returns deliveries (0..2)."""
        if msg.dst in self.dead:
            self.counters.msgs_to_dead += 1
            self._trace(msg.dst, "fault.msg_to_dead",
                        f"src=T{msg.src} tag={msg.tag}")
            self.algo.on_msg_to_dead(msg)
            return []
        plan = self.plan
        drop_rate = plan.msg_drop_rate
        delay_rate = plan.msg_delay_rate
        dup_rate = plan.msg_dup_rate
        if self._rate_storms:
            drop_rate = self._rate("drop", drop_rate)
            delay_rate = self._rate("delay", delay_rate)
            dup_rate = self._rate("dup", dup_rate)
        if (drop_rate > 0.0
                and msg.tag in self.algo.droppable_tags
                and self._drop.chance(drop_rate)):
            self.counters.msgs_dropped += 1
            self._trace(msg.dst, "fault.drop", f"src=T{msg.src} tag={msg.tag}")
            return []
        if (delay_rate > 0.0
                and self._delay.chance(delay_rate)):
            extra = self._delay.uniform(0.0, plan.msg_delay_max)
            msg = replace(msg, arrival_time=msg.arrival_time + extra)
            self.counters.msgs_delayed += 1
            self._trace(msg.dst, "fault.delay",
                        f"src=T{msg.src} tag={msg.tag} extra={extra:g}")
        out = [msg]
        if (dup_rate > 0.0
                and msg.tag in self.algo.duplicable_tags
                and self._dup.chance(dup_rate)):
            late = self._dup.uniform(0.0, plan.msg_delay_max)
            out.append(replace(msg, arrival_time=msg.arrival_time + late))
            self.counters.msgs_duplicated += 1
            self._trace(msg.dst, "fault.dup", f"src=T{msg.src} tag={msg.tag}")
        return out

    # -- timing faults -----------------------------------------------------

    def roll_lock_stall(self, rank: int = -1) -> float:
        """Extra hold time to inject into the current lock release.

        ``rank`` identifies the stalled holder in the trace stream only;
        the roll itself is rank-independent.
        """
        plan = self.plan
        rate = plan.lock_stall_rate
        if self._rate_storms:
            rate = self._rate("stall", rate)
        if rate > 0.0 and self._stall.chance(rate):
            self.counters.lock_stalls += 1
            self._trace(rank, "fault.stall", f"t={plan.lock_stall_time:g}")
            return plan.lock_stall_time
        return 0.0

    def on_staleable_write(self, var) -> None:
        """Maybe open a stale-visibility window over ``var``'s old value."""
        plan = self.plan
        rate = plan.stale_read_rate
        if self._rate_storms:
            rate = self._rate("stale", rate)
        if rate > 0.0 and self._stale.chance(rate):
            var.stale_value = var.value
            var.stale_until = self.machine.sim.now + plan.stale_read_window
            self.counters.stale_windows += 1
            self._trace(var.home, "fault.stale",
                        f"var={var.name} until={var.stale_until:g}")

    # -- failure detection -------------------------------------------------

    def suspected(self, rank: int) -> bool:
        """Has the failure detector declared ``rank`` dead?

        Suspicion is *accurate by construction* (a rank is only
        suspected if it actually fail-stopped) but *late by design*:
        the detector needs ``heartbeat_miss`` silent epochs, modelling
        the detection latency a real heartbeat scheme pays.
        """
        if rank not in self.dead:
            return False
        if self.machine.sim.now - self.last_beat[rank] < self.plan.suspect_after:
            return False
        if rank not in self._suspicion_seen:
            self._suspicion_seen.add(rank)
            self.counters.heartbeat_suspicions += 1
            self._trace(rank, "fault.suspect", f"T{rank}")
        return True

    # -- steal-retry backoff -----------------------------------------------

    def next_steal_timeout(self, current: float) -> float:
        """Next steal-retry timeout: double, jitter, then hard-cap.

        Centralises the retry schedule so no protocol can back off past
        ``plan.steal_timeout_max`` -- under a fault storm a thief may be
        refused for the whole window, and an uncapped doubling would
        push its next probe beyond the simulation horizon.  With
        ``steal_retry_jitter > 0`` each doubling is perturbed by a
        substream draw (deterministic, seed-reproducible) so thieves
        that timed out together spread their retries; the default 0.0
        reproduces the historical ``min(2x, cap)`` schedule exactly and
        consumes no draws.
        """
        plan = self.plan
        nxt = current * 2.0
        jitter = plan.steal_retry_jitter
        if jitter > 0.0:
            nxt *= 1.0 + jitter * (self._retry.random() - 0.5)
        cap = plan.steal_timeout_max
        return cap if nxt > cap else nxt

    # -- work-transfer journal ---------------------------------------------

    def begin_transfer(self, rank: int, nodes: List[Any]) -> None:
        """``rank`` holds ``nodes`` mid-transfer in its generator frame."""
        if rank in self._open_transfer:
            # At most one transfer can live in a rank's frame; a second
            # journal entry would orphan the first one's nodes (they
            # would be lost without ever being accounted).
            raise ProtocolError(
                f"T{rank} opened a second transfer while "
                f"{len(self._open_transfer[rank])} node(s) from its "
                f"first are still journalled")
        self._open_transfer[rank] = nodes

    def end_transfer(self, rank: int) -> None:
        self._open_transfer.pop(rank, None)

    def register_response(self, thief: int, nodes: List[Any]) -> None:
        """Work granted to ``thief`` but not yet pushed on its stack."""
        if thief in self._responses:
            raise ProtocolError(
                f"T{thief} granted a second steal response while "
                f"{len(self._responses[thief])} node(s) from its first "
                f"are still journalled")
        self._responses[thief] = nodes

    def clear_response(self, thief: int) -> None:
        self._responses.pop(thief, None)

    # -- loss accounting ---------------------------------------------------

    def account_lost(self, nodes: List[Any], on_stack: bool = False) -> None:
        """Record node descriptors destroyed by a fail-stop fault.

        ``on_stack=True`` means the nodes were cleared from the dead
        rank's own stack (they still count in the conservation ledger's
        stack totals, so the ledger subtracts them); ``False`` means
        they died mid-steal (already excluded from the stacks via
        ``stolen_from_me_nodes``, so subtracting them again would
        double-count the loss).
        """
        self.lost_descriptors.extend(nodes)
        self.counters.lost_nodes += len(nodes)
        if on_stack:
            self._lost_stack_nodes += len(nodes)
            self.counters.lost_nodes_on_stack += len(nodes)
        else:
            self._lost_in_flight_nodes += len(nodes)
            self.counters.lost_nodes_in_flight += len(nodes)
        self._trace(-1, "fault.lost", f"nodes={len(nodes)}")
        if self.on_lost is not None:
            self.on_lost(nodes)

    def on_thread_death(self, rank: int) -> None:
        """Account a fail-stopped thread's work; keep the ledger exact.

        Called synchronously at the kill instant (from the dying
        thread's ``ThreadKilled`` handler, or from the watchdog if the
        thread never started), so all adjustments land atomically.
        """
        algo = self.algo
        self.dead.add(rank)
        self.counters.threads_killed += 1
        self._trace(rank, "fault.kill", f"T{rank}")
        # A transfer open in the dead thread's frame: the nodes were
        # popped from a victim and exist only in the corpse.
        nodes = self._open_transfer.pop(rank, None)
        if nodes:
            algo.in_flight_nodes -= len(nodes)
            self.account_lost(nodes)
        # Work granted *to* the dead thread that it never fetched.
        nodes = self._responses.pop(rank, None)
        if nodes:
            algo.in_flight_nodes -= len(nodes)
            self.account_lost(nodes)
        # Everything still on the dead thread's stack is lost.
        stack = algo.stacks[rank]
        orphans = list(stack.local)
        for chunk in stack.shared:
            orphans.extend(chunk)
        if orphans:
            stack.local.clear()
            stack.shared.clear()
            self.account_lost(orphans, on_stack=True)
        # Advertise NO_WORK so probes route around the corpse, and free
        # any lock the corpse held or queued for.
        algo.work_avail[rank].poke(_NO_WORK)
        # Under idle_strategy='park' the corpse must leave the gate's
        # category counters: a dead rank can neither be woken nor keep
        # n_active inflated (which would starve the wake_all-on-drain).
        gate = getattr(algo, "_gate", None)
        if gate is not None:
            gate.on_death(rank)
        for lk in self.machine._locks:
            lk.on_thread_death(rank)
        algo.on_thread_death(rank)

    # -- conservation ------------------------------------------------------

    def check_conservation(self) -> None:
        """Assert the node-conservation ledger (see module docstring)."""
        algo = self.algo
        total = pushes = pops = stolen = 0
        for stack in algo.stacks:
            total += stack.total_nodes
            pushes += stack.pushes
            pops += stack.pops
            stolen += stack.stolen_from_me_nodes
        expected = pushes - pops - stolen - self._lost_stack_nodes
        if total != expected:
            raise ProtocolError(
                f"conservation violated at t={self.machine.sim.now:.6f}: "
                f"stacks hold {total} node(s) but ledger expects {expected} "
                f"(pushes={pushes} pops={pops} stolen={stolen} "
                f"lost_from_stacks={self._lost_stack_nodes})")
        if algo.in_flight_nodes < 0:
            raise ProtocolError(
                f"in_flight_nodes went negative "
                f"({algo.in_flight_nodes}) at t={self.machine.sim.now:.6f}")
        lost = self.counters.lost_nodes
        if lost != self._lost_stack_nodes + self._lost_in_flight_nodes:
            raise ProtocolError(
                f"loss attribution violated at t={self.machine.sim.now:.6f}: "
                f"{lost} lost node(s) but on_stack={self._lost_stack_nodes} "
                f"+ in_flight={self._lost_in_flight_nodes}")
        self.counters.invariant_checks += 1

    def lost_work_total(self, tree) -> int:
        """Exact subtree size under every lost descriptor.

        A lost node was never visited, so none of its descendants were
        ever generated -- the lost subtrees are disjoint and their
        total is exactly the gap to the sequential oracle.
        """
        children = tree.children
        total = 0
        for root in self.lost_descriptors:
            stack = [root]
            while stack:
                node = stack.pop()
                total += 1
                stack.extend(children(node))
        self.counters.lost_work = total
        return total

    # -- background processes ----------------------------------------------

    def start(self) -> None:
        """Spawn watchdogs after the worker threads (order is fixed for
        determinism): kill timers, heartbeats, and the ledger checker."""
        sim = self.machine.sim
        procs = list(self.machine._procs)

        def threads_running() -> bool:
            return any(p.alive for p in procs)

        def kill_watch(rank: int, t_kill: float):
            # Sleep in heartbeat-sized steps so a run that finishes
            # before the kill time is not held open until t_kill.
            step = self.plan.heartbeat_period
            while sim.now < t_kill:
                if not threads_running():
                    return
                yield Timeout(min(step, t_kill - sim.now))
            target = procs[rank]
            if target.alive:
                sim.interrupt(target, ThreadKilled(
                    f"T{rank} fail-stopped at t={sim.now:.6f}"))
            if rank not in self.dead:
                # The body never ran its ThreadKilled handler (killed
                # before its first instruction): account here.
                self.on_thread_death(rank)

        def heartbeat(rank: int):
            target = procs[rank]
            while target.alive:
                self.last_beat[rank] = sim.now
                yield Timeout(self.plan.heartbeat_period)

        def checker():
            while threads_running():
                self.check_conservation()
                yield Timeout(self.plan.check_period)

        for rank, t_kill in self.kill_schedule:
            sim.spawn(kill_watch(rank, t_kill), name=f"faults.kill[T{rank}]")
        if self.kill_schedule:
            for rank in range(self.machine.n_threads):
                sim.spawn(heartbeat(rank), name=f"faults.beat[T{rank}]")
        sim.spawn(checker(), name="faults.checker")
