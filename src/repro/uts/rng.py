"""Splittable random-stream engines for UTS node generation.

UTS trees are *implicit*: a node's entire subtree is reproducible from
its 20-byte description (the state of a splittable RNG).  Spawning
child ``i`` of a node hashes the parent state with the child index --
the "BRG SHA-1" scheme of the reference UTS implementation.

Three interchangeable engines:

* ``sha1``      -- the spec-faithful scheme via ``hashlib`` (default).
* ``sha1-pure`` -- same scheme through our from-scratch SHA-1
  (:mod:`repro.uts.sha1`); bit-identical trees, ~50x slower.
* ``splitmix``  -- a fast 64-bit splittable mix for very large
  simulated runs.  Different trees than sha1, same statistics.

All engines expose ``init(seed)``, ``spawn(state, i)``, ``rand(state)``
where ``rand`` returns a 31-bit non-negative int, matching UTS's
``rng_rand`` contract.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Protocol, Union

from repro.errors import ConfigError
from repro.uts.sha1 import sha1 as _pure_sha1

__all__ = ["RngEngine", "Sha1Engine", "PureSha1Engine", "SplitmixEngine",
           "get_engine", "RAND_MAX"]

#: ``rng_rand`` range: non-negative 31-bit ints, [0, RAND_MAX].
RAND_MAX = 0x7FFFFFFF

State = Union[bytes, int]

# Child-index suffixes, precomputed for the hot path.
_IDX = [struct.pack(">I", i) for i in range(4096)]


class RngEngine(Protocol):
    """Engine protocol: a splittable stream of deterministic states."""

    name: str

    def init(self, seed: int) -> State: ...

    def spawn(self, state: State, i: int) -> State: ...

    def rand(self, state: State) -> int: ...


class Sha1Engine:
    """BRG-SHA1 scheme over ``hashlib`` (the reference UTS behaviour)."""

    name = "sha1"

    def init(self, seed: int) -> bytes:
        return hashlib.sha1(b"UTS root" + struct.pack(">q", seed)).digest()

    def spawn(self, state: bytes, i: int) -> bytes:
        idx = _IDX[i] if i < 4096 else struct.pack(">I", i)
        return hashlib.sha1(state + idx).digest()

    def rand(self, state: bytes) -> int:
        return int.from_bytes(state[:4], "big") & RAND_MAX


class PureSha1Engine(Sha1Engine):
    """Identical trees to :class:`Sha1Engine`, using our own SHA-1."""

    name = "sha1-pure"

    def init(self, seed: int) -> bytes:
        return _pure_sha1(b"UTS root" + struct.pack(">q", seed))

    def spawn(self, state: bytes, i: int) -> bytes:
        idx = _IDX[i] if i < 4096 else struct.pack(">I", i)
        return _pure_sha1(state + idx)


_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_M64 = 0xFFFFFFFFFFFFFFFF


def _mix64(z: int) -> int:
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _M64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _M64
    return z ^ (z >> 31)


class SplitmixEngine:
    """Fast splittable engine (SplitMix64 finalizer over 64-bit states).

    Not bit-compatible with the SHA-1 scheme, but statistically
    equivalent for tree shaping; used when simulating trees of tens of
    millions of nodes where SHA-1 would dominate wall-clock time.
    """

    name = "splitmix"

    def init(self, seed: int) -> int:
        return _mix64((seed * _SPLITMIX_GAMMA + 0xABCD) & _M64)

    def spawn(self, state: int, i: int) -> int:
        return _mix64((state + (i + 1) * _SPLITMIX_GAMMA) & _M64)

    def rand(self, state: int) -> int:
        return state >> 33  # top 31 bits


_ENGINES = {
    "sha1": Sha1Engine(),
    "sha1-pure": PureSha1Engine(),
    "splitmix": SplitmixEngine(),
}


def get_engine(name: str) -> RngEngine:
    """Look up an engine by name."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ConfigError(
            f"unknown rng engine {name!r}; available: {sorted(_ENGINES)}"
        ) from None
