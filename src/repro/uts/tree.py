"""Implicit UTS tree generation.

A node is a ``(state, height)`` tuple -- the splittable-RNG state fully
determines the subtree below it, so the tree is generated on the fly
during the search and never materialized (nodes live only on DFS
stacks, Sect. 2).

:meth:`Tree.children` is the hot path of the entire reproduction: it is
called once per tree node by whichever thread visits that node.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple, Union

from repro.uts.params import TreeParams
from repro.uts.rng import RAND_MAX, RngEngine, get_engine

__all__ = ["Node", "Tree"]

#: A tree node: (rng state, height).  Plain tuple for speed.
Node = Tuple[Union[bytes, int], int]


class Tree:
    """Generator of one implicit UTS tree."""

    __slots__ = ("params", "engine", "_thresh", "_m", "_b0", "_is_binomial",
                 "_gen_mx", "_geo_b0", "_geo_shape", "_geo_bf_cache")

    def __init__(self, params: TreeParams) -> None:
        self.params = params
        self.engine: RngEngine = get_engine(params.engine)
        self._is_binomial = params.shape == "binomial"
        self._b0 = params.b0
        self._m = params.m
        # rng_rand(state) < floor(q * 2^31)  <=>  interior node.
        self._thresh = int(params.q * (RAND_MAX + 1))
        self._gen_mx = params.gen_mx
        self._geo_b0 = float(params.b0)
        self._geo_shape = params.geo_shape
        #: depth -> branching factor; the factor is a pure function of
        #: depth, but recomputing it costs a log/sin per node visit.
        self._geo_bf_cache: dict = {}

    # -- node construction ---------------------------------------------------

    def root(self) -> Node:
        return (self.engine.init(self.params.seed), 0)

    def num_children(self, node: Node) -> int:
        """Child count of ``node`` (deterministic in its state)."""
        state, height = node
        if self._is_binomial:
            if height == 0:
                return self._b0
            return self._m if self.engine.rand(state) < self._thresh else 0
        return self._geometric_children(state, height)

    def _geo_branching_factor(self, depth: int) -> float:
        """Expected branching factor at ``depth``, memoized per depth
        (it is a pure function of depth)."""
        bf = self._geo_bf_cache.get(depth)
        if bf is None:
            bf = self._geo_bf_cache[depth] = self._geo_bf_compute(depth)
        return bf

    def _geo_bf_compute(self, depth: int) -> float:
        """Branching factor at ``depth`` per the UTS shape functions
        (reference implementation's GEO variants)."""
        shape = self._geo_shape
        b0 = self._geo_b0
        mx = self._gen_mx
        if shape == "linear":
            return b0 * (1.0 - depth / mx) if depth < mx else 0.0
        if shape == "fixed":
            return b0 if depth < mx else 0.0
        if shape == "expdec":
            if depth == 0:
                return b0
            if depth >= mx:
                return 0.0
            return b0 * depth ** (-math.log(b0) / math.log(float(mx)))
        # cyclic: branching oscillates; hard stop at 5*gen_mx.
        if depth > 5 * mx:
            return 0.0
        if depth % mx >= mx - 1:
            return 0.0
        return b0 ** math.sin(2.0 * math.pi * depth / mx)

    def _geometric_children(self, state, depth: int) -> int:
        """Geometric child count with depth-shaped mean (UTS 'GEO')."""
        b_d = self._geo_branching_factor(depth)
        if b_d <= 0.0:
            return 0
        p = 1.0 / (1.0 + b_d)
        u = (self.engine.rand(state) + 0.5) / (RAND_MAX + 1.0)  # (0,1)
        return int(math.floor(math.log(1.0 - u) / math.log(1.0 - p)))

    def children(self, node: Node) -> list:
        """Materialize the children of ``node`` (hot path)."""
        n = self.num_children(node)
        if n == 0:
            return []
        state, height = node
        spawn = self.engine.spawn
        h1 = height + 1
        return [(spawn(state, i), h1) for i in range(n)]

    # -- traversal helpers -----------------------------------------------------

    def iter_dfs(self) -> Iterator[Node]:
        """Depth-first iterator over every node (sequential reference)."""
        stack = [self.root()]
        pop = stack.pop
        extend = stack.extend
        children = self.children
        while stack:
            node = pop()
            yield node
            extend(children(node))
