"""Imbalance statistics for UTS trees.

Sect. 2 of the paper motivates UTS by the extreme variability of
subtree sizes ("over 99.9% of the work is contained in just one of the
2000 subtrees below the root"; "frequent small subtrees and
occasionally enormous subtrees").  These helpers quantify both claims
for the scaled trees the reproduction actually runs:

* :func:`root_subtree_imbalance` -- concentration measures (largest
  fraction, Gini) over the root's immediate subtrees.
* :func:`tail_exponent` -- the power-law exponent of the subtree-size
  survival function.  Branching-process theory says a (near-)critical
  binomial tree has P(S > s) ~ s^(-1/2); measuring it confirms the
  scaled workloads sit in the same heavy-tailed regime as the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from repro.uts.params import TreeParams
from repro.uts.tree import Node, Tree

__all__ = ["ImbalanceStats", "subtree_sizes", "root_subtree_imbalance",
           "tail_exponent", "stack_depth_profile", "DepthProfile"]


@dataclass(frozen=True)
class ImbalanceStats:
    """Distribution summary of the root's immediate subtree sizes."""

    sizes: tuple
    total: int

    @property
    def largest(self) -> int:
        return max(self.sizes) if self.sizes else 0

    @property
    def largest_fraction(self) -> float:
        """Fraction of all work under the single largest root subtree."""
        return self.largest / self.total if self.total else 0.0

    @property
    def mean(self) -> float:
        return self.total / len(self.sizes) if self.sizes else 0.0

    @property
    def gini(self) -> float:
        """Gini coefficient of subtree sizes (0 balanced, ->1 extreme)."""
        n = len(self.sizes)
        if n == 0 or self.total == 0:
            return 0.0
        ordered = sorted(self.sizes)
        cum = 0
        weighted = 0
        for i, s in enumerate(ordered, start=1):
            weighted += i * s
            cum += s
        return (2.0 * weighted) / (n * cum) - (n + 1.0) / n


def subtree_size(tree: Tree, node: Node, max_nodes: int = 500_000_000) -> int:
    """Exact node count of the subtree rooted at ``node``."""
    count = 0
    stack = [node]
    pop = stack.pop
    extend = stack.extend
    children = tree.children
    while stack:
        count += 1
        if count > max_nodes:
            raise RuntimeError("subtree exceeded max_nodes")
        extend(children(pop()))
    return count


def subtree_sizes(params: TreeParams) -> list:
    """Sizes of each immediate subtree below the root."""
    tree = Tree(params)
    return [subtree_size(tree, child) for child in tree.children(tree.root())]


def root_subtree_imbalance(params: TreeParams) -> ImbalanceStats:
    """Imbalance summary across the root's immediate subtrees."""
    sizes = subtree_sizes(params)
    return ImbalanceStats(sizes=tuple(sizes), total=sum(sizes) + 1)


@dataclass(frozen=True)
class DepthProfile:
    """DFS stack-depth statistics over a full sequential traversal.

    The stack depth at each visit is (an upper bound on) the work
    instantaneously available to thieves -- the tree's *parallel
    frontier*.  For near-critical binomial trees its mean scales like
    sqrt(n), which is what limits how many threads a tree of a given
    size can feed (see docs/simulation-model.md).
    """

    n_nodes: int
    mean_depth: float
    max_depth_seen: int
    #: Stack depth sampled at evenly spaced points through the search.
    samples: tuple

    @property
    def normalized_mean(self) -> float:
        """mean_depth / sqrt(n): roughly constant across sizes near
        criticality."""
        return self.mean_depth / (self.n_nodes ** 0.5)


def stack_depth_profile(params: TreeParams, n_samples: int = 100,
                        max_nodes: int = 500_000_000) -> DepthProfile:
    """Traverse the tree, recording the DFS stack-depth trajectory."""
    tree = Tree(params)
    stack = [tree.root()]
    pop = stack.pop
    extend = stack.extend
    children = tree.children
    depth_sum = 0
    max_depth = 0
    count = 0
    trajectory = []
    while stack:
        d = len(stack)
        depth_sum += d
        if d > max_depth:
            max_depth = d
        trajectory.append(d)
        count += 1
        if count > max_nodes:
            raise RuntimeError("tree exceeded max_nodes")
        extend(children(pop()))
    step = max(1, count // n_samples)
    samples = tuple(trajectory[::step][:n_samples])
    return DepthProfile(n_nodes=count, mean_depth=depth_sum / count,
                        max_depth_seen=max_depth, samples=samples)


def tail_exponent(sizes, min_size: int = 2) -> tuple:
    """Power-law exponent of the survival function P(S > s).

    Fits ``log P(S > s) = alpha * log s + c`` by least squares over the
    empirical CCDF of ``sizes`` (ignoring sizes below ``min_size``).
    Returns ``(alpha, r_value)``.  Near-critical binomial UTS trees
    should give alpha close to -1/2.
    """
    data = np.asarray([s for s in sizes if s >= min_size], dtype=float)
    if data.size < 10:
        raise ValueError(f"need >= 10 tail samples, got {data.size}")
    data.sort()
    # CCDF: fraction of samples strictly greater than each value.
    ccdf = 1.0 - np.arange(1, data.size + 1) / data.size
    keep = ccdf > 0  # drop the final point (log 0)
    log_s = np.log(data[keep])
    log_p = np.log(ccdf[keep])
    fit = _scipy_stats.linregress(log_s, log_p)
    return float(fit.slope), float(fit.rvalue)
