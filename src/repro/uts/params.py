"""UTS tree parameterization.

Two tree shapes from the UTS family:

* **binomial** -- the paper's workload.  The root has ``b0`` children;
  every other node has ``m`` children with probability ``q`` and none
  with probability ``1 - q``.  With ``m*q < 1`` the branching process
  is subcritical: every subtree is finite, the expected subtree size is
  the same at every node (``1 / (1 - m*q)``), and the size distribution
  is extremely heavy-tailed as ``m*q -> 1`` -- the "frequent small
  subtrees and occasionally enormous subtrees" of Sect. 2.

* **geometric** -- provided for completeness with the wider UTS
  benchmark: a node at depth ``d`` draws its child count from a
  geometric distribution whose mean ``b_d`` follows one of the UTS
  shape functions (``linear``, ``expdec``, ``cyclic``, ``fixed``).

The paper's exact parameter sets (footnotes 1-2) are provided as
:data:`T1_PAPER` / :data:`T3_PAPER`; the scaled counterparts actually
run by the reproduction harness live in :mod:`repro.harness.config`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError

__all__ = ["TreeParams", "T1_PAPER", "T3_PAPER"]


@dataclass(frozen=True)
class TreeParams:
    """Immutable description of one UTS tree."""

    shape: str = "binomial"
    #: Branching factor of the root node (``b`` in the paper).
    b0: int = 2000
    #: Non-root branching factor when a node is interior (``m``).
    m: int = 2
    #: Probability a non-root node is interior (``q``).
    q: float = 0.2
    #: Root RNG seed (``r``).
    seed: int = 0
    #: Geometric shape only: depth cutoff.
    gen_mx: int = 6
    #: Geometric shape only: branching-factor shape function
    #: ("linear", "expdec", "cyclic", or "fixed", as in reference UTS).
    geo_shape: str = "linear"
    #: RNG engine: "sha1" (default), "sha1-pure", or "splitmix".
    engine: str = "sha1"
    #: UTS's compute-granularity knob: per-node work multiplier, for
    #: emulating searches whose state evaluation costs more than one
    #: hash (e.g. branch-and-bound bound functions).  Scales the
    #: simulated per-node visit time; the tree itself is unchanged.
    compute_granularity: int = 1

    def __post_init__(self) -> None:
        if self.shape not in ("binomial", "geometric"):
            raise ConfigError(f"unknown tree shape {self.shape!r}")
        if self.b0 < 0:
            raise ConfigError("b0 must be >= 0")
        if self.compute_granularity < 1:
            raise ConfigError("compute_granularity must be >= 1")
        if self.shape == "binomial":
            if not (0.0 <= self.q < 1.0):
                raise ConfigError(f"q must be in [0, 1), got {self.q}")
            if self.m < 1:
                raise ConfigError("m must be >= 1 for binomial trees")
            if self.m * self.q >= 1.0:
                raise ConfigError(
                    f"supercritical tree (m*q = {self.m * self.q:.6f} >= 1): "
                    "expected size is infinite"
                )
        else:
            if self.gen_mx < 1:
                raise ConfigError("gen_mx must be >= 1 for geometric trees")
            if self.geo_shape not in ("linear", "expdec", "cyclic", "fixed"):
                raise ConfigError(
                    f"unknown geometric shape {self.geo_shape!r}; "
                    "expected linear/expdec/cyclic/fixed"
                )
            if self.geo_shape == "fixed" and self.b0 >= 2 and self.gen_mx > 12:
                raise ConfigError(
                    "fixed-shape geometric tree would have ~b0^gen_mx nodes; "
                    "reduce gen_mx"
                )

    # -- constructors -------------------------------------------------------

    @classmethod
    def binomial(cls, b0: int = 2000, m: int = 2, q: float = 0.2,
                 seed: int = 0, engine: str = "sha1") -> "TreeParams":
        return cls(shape="binomial", b0=b0, m=m, q=q, seed=seed, engine=engine)

    @classmethod
    def geometric(cls, b0: int = 4, gen_mx: int = 6, seed: int = 0,
                  engine: str = "sha1",
                  geo_shape: str = "linear") -> "TreeParams":
        return cls(shape="geometric", b0=b0, gen_mx=gen_mx, seed=seed,
                   engine=engine, geo_shape=geo_shape)

    # -- derived quantities --------------------------------------------------

    def expected_size(self) -> Optional[float]:
        """Expected node count (binomial trees only; None for geometric)."""
        if self.shape != "binomial":
            return None
        mean_subtree = 1.0 / (1.0 - self.m * self.q)
        return 1.0 + self.b0 * mean_subtree

    def with_seed(self, seed: int) -> "TreeParams":
        return replace(self, seed=seed)

    def with_engine(self, engine: str) -> "TreeParams":
        return replace(self, engine=engine)

    def describe(self) -> str:
        if self.shape == "binomial":
            return (f"binomial(b0={self.b0}, m={self.m}, q={self.q}, "
                    f"r={self.seed}, engine={self.engine})")
        return (f"geometric(b0={self.b0}, gen_mx={self.gen_mx}, "
                f"shape={self.geo_shape}, r={self.seed}, "
                f"engine={self.engine})")


#: Paper footnote 1: the 10.6-billion-node tree used on Kitty Hawk.
#: (Runnable in principle; far beyond a Python session's budget.)
T1_PAPER = TreeParams.binomial(b0=2000, m=2, q=0.5 * (1 - 1e-8), seed=0)

#: Paper footnote 2: the 157-billion-node tree used on Topsail.
T3_PAPER = TreeParams.binomial(b0=2000, m=2, q=0.5 * (1 - 1e-6), seed=559)
