"""Materialized UTS trees: expand once, serve every subsequent run.

A figure sweep executes dozens of independent runs over the *same*
tree, and the implicit :class:`~repro.uts.tree.Tree` re-derives every
node's children with one SHA-1 hash per child on every run -- the
documented hot path.  :class:`MaterializedTree` performs that expansion
exactly once, stores the nodes and per-node child counts in flat
arrays, and then answers ``root()`` / ``children()`` / ``num_children()``
by index lookup for every later run of the same :class:`TreeParams`.

Layout (one breadth-first pass):

* ``_nodes``   -- every node tuple, root first.
* ``_kid_map`` -- node tuple -> precomputed list of child nodes (leaves
  share one empty list).

``children()`` is therefore a single dict lookup -- no hashing beyond
the key -- and the whole structure is read-only after construction, so
it is shared copy-on-write with forked sweep workers.

Memory is bounded by :func:`node_cap` (default 2,000,000 nodes,
override with ``REPRO_TREE_CACHE_CAP``; ``REPRO_TREE_CACHE=0``
disables materialization entirely): :func:`materialize` falls back to
returning the implicit :class:`Tree` when the expansion would exceed
the cap, so near-critical trees degrade to on-the-fly generation
instead of exhausting host memory.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional

from repro.uts.params import TreeParams
from repro.uts.tree import Node, Tree

__all__ = ["MaterializedTree", "materialize", "node_cap", "DEFAULT_NODE_CAP"]

#: Default ceiling on materialized tree size (nodes).  A 2M-node
#: binomial tree costs roughly 250 MB of node tuples + index; past
#: that, on-the-fly generation is the right trade.
DEFAULT_NODE_CAP = 2_000_000


def node_cap() -> int:
    """The active materialization cap (``REPRO_TREE_CACHE_CAP`` wins).

    ``REPRO_TREE_CACHE=0`` disables materialization (cap of zero).
    """
    if os.environ.get("REPRO_TREE_CACHE", "1") == "0":
        return 0
    return int(os.environ.get("REPRO_TREE_CACHE_CAP", DEFAULT_NODE_CAP))


class MaterializedTree:
    """One fully-expanded UTS tree, served from flat arrays.

    Drop-in for :class:`~repro.uts.tree.Tree` wherever a search space
    is consumed (``root``/``children``/``num_children``/``iter_dfs``),
    producing bit-identical node tuples.  Callers must treat the lists
    returned by :meth:`children` as read-only (every built-in algorithm
    does).
    """

    __slots__ = ("params", "engine", "_base", "_nodes", "_kid_map",
                 "n_nodes", "n_leaves", "max_depth")

    #: Shared empty child list for leaves (callers treat it read-only).
    _NO_KIDS: List[Node] = []

    def __init__(self, base: Tree, nodes: List[Node], kid_map: dict) -> None:
        self.params: TreeParams = base.params
        self.engine = base.engine
        self._base = base
        self._nodes = nodes
        self._kid_map = kid_map
        self.n_nodes = len(nodes)
        self.n_leaves = sum(1 for k in kid_map.values() if not k)
        self.max_depth = max(h for _, h in nodes) if nodes else 0

    @classmethod
    def build(cls, params: TreeParams,
              max_nodes: Optional[int] = None) -> Optional["MaterializedTree"]:
        """Expand ``params`` in one pass; None if it exceeds ``max_nodes``."""
        cap = node_cap() if max_nodes is None else max_nodes
        if cap <= 0:
            return None
        base = Tree(params)
        # Vectorized builder (repro.fastpath.nputs): same breadth-first
        # node list and child map, built level-at-a-time with numpy
        # child-count kernels.  None means "no kernel for this shape";
        # OVERFLOW means the scalar loop would hit the cap too.
        from repro.fastpath import vector_expansion_enabled
        if vector_expansion_enabled():
            from repro.fastpath import nputs
            built = nputs.fast_build(base, cap, cls._NO_KIDS)
            if built is nputs.OVERFLOW:
                return None
            if built is not None:
                return cls(base, built[0], built[1])
        nodes: List[Node] = [base.root()]
        kid_map: dict = {}
        no_kids = cls._NO_KIDS
        children = base.children
        i = 0
        while i < len(nodes):
            node = nodes[i]
            kids = children(node)
            kid_map[node] = kids if kids else no_kids
            nodes.extend(kids)
            if len(nodes) > cap:
                return None
            i += 1
        return cls(base, nodes, kid_map)

    def describe(self) -> str:
        return self.params.describe()

    # -- search-space protocol ----------------------------------------------

    def root(self) -> Node:
        return self._nodes[0]

    def num_children(self, node: Node) -> int:
        kids = self._kid_map.get(node)
        if kids is None:  # not part of this tree; derive on the fly
            return self._base.num_children(node)
        return len(kids)

    def children(self, node: Node) -> list:
        """Children of ``node`` as a fresh list (hot path, no hashing)."""
        kids = self._kid_map.get(node)
        if kids is None:  # not part of this tree; derive on the fly
            return self._base.children(node)
        return list(kids)

    # -- fused exploration hook ----------------------------------------------

    def batch_expand(self, local: list, limit: int, thresh: int) -> tuple:
        """Run the DFS inner loop of ``AlgorithmBase.explore_batch``
        directly against the precomputed child map (one dict lookup per
        node, no per-node ``children()`` call, no list copies).  Must
        mirror the generic loop exactly: same pop order, same early
        exits.  Returns ``(visited, pushed)``.
        """
        kid_map = self._kid_map
        pop = local.pop
        extend = local.extend
        n = 0
        pushed = 0
        # Track the stack depth in a local integer instead of calling
        # ``len(local)`` twice per node (pop always removes one, extend
        # always adds len(kids)).
        llen = len(local)
        while llen and n < limit:
            node = pop()
            llen -= 1
            try:
                kids = kid_map[node]
            except KeyError:  # foreign node: derive on the fly
                kids = self._base.children(node)
            if kids:
                extend(kids)
                k = len(kids)
                pushed += k
                llen += k
            n += 1
            if llen >= thresh:
                break
        return n, pushed

    # -- traversal helpers ----------------------------------------------------

    def iter_dfs(self) -> Iterator[Node]:
        """Depth-first iterator; identical sequence to ``Tree.iter_dfs``."""
        stack = [self.root()]
        pop = stack.pop
        extend = stack.extend
        children = self.children
        while stack:
            node = pop()
            yield node
            extend(children(node))


def materialize(params: TreeParams, max_nodes: Optional[int] = None):
    """Best-effort materialization of ``params``.

    Returns a :class:`MaterializedTree` when the tree fits under the
    node cap, or the implicit :class:`Tree` otherwise -- either way the
    result serves the search-space protocol with identical nodes.
    """
    mat = MaterializedTree.build(params, max_nodes=max_nodes)
    return mat if mat is not None else Tree(params)
