"""The Unbalanced Tree Search (UTS) benchmark workload.

* :class:`~repro.uts.params.TreeParams` -- tree parameterization
  (binomial/geometric shapes; the paper's exact trees as constants).
* :class:`~repro.uts.tree.Tree` -- implicit tree generation via
  splittable RNG engines (SHA-1, from-scratch SHA-1, splitmix).
* :func:`~repro.uts.sequential.count_tree` -- sequential reference
  traversal (the speedup baseline and the correctness oracle).
* :class:`~repro.uts.materialized.MaterializedTree` -- expand-once
  flat-array tree shared across repeated runs of one parameterization.
* :mod:`repro.uts.stats` -- imbalance statistics.
"""

from repro.uts.materialized import MaterializedTree, materialize
from repro.uts.params import T1_PAPER, T3_PAPER, TreeParams
from repro.uts.rng import RAND_MAX, get_engine
from repro.uts.sequential import TreeStats, count_tree, sequential_search
from repro.uts.sha1 import sha1, sha1_hex
from repro.uts.stats import ImbalanceStats, root_subtree_imbalance, subtree_sizes
from repro.uts.tree import Node, Tree

__all__ = [
    "TreeParams",
    "T1_PAPER",
    "T3_PAPER",
    "Tree",
    "Node",
    "MaterializedTree",
    "materialize",
    "TreeStats",
    "count_tree",
    "sequential_search",
    "ImbalanceStats",
    "root_subtree_imbalance",
    "subtree_sizes",
    "sha1",
    "sha1_hex",
    "get_engine",
    "RAND_MAX",
]
