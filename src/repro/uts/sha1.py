"""Pure-Python SHA-1 (RFC 3174 / FIPS 180-1), implemented from scratch.

UTS derives every tree node's description by SHA-1 hashing its parent's
description plus the child index (Sect. 2 of the paper, citing RFC
3174).  The reproduction therefore carries its own SHA-1 so the entire
benchmark is self-contained; it is verified bit-for-bit against
``hashlib`` in the test suite.  ``hashlib``'s C implementation remains
the default *engine* for speed (see :mod:`repro.uts.rng`), with this
module available as the ``sha1-pure`` engine.
"""

from __future__ import annotations

import struct

__all__ = ["sha1", "sha1_hex"]

_MASK = 0xFFFFFFFF

# Per-round constants (FIPS 180-1 section 5).
_K = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)

_H_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _rotl(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK


def _pad(message: bytes) -> bytes:
    """Append the '1' bit, zero padding, and the 64-bit length field."""
    bit_len = len(message) * 8
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    return padded + struct.pack(">Q", bit_len)


def _compress(h: tuple[int, int, int, int, int],
              block: bytes) -> tuple[int, int, int, int, int]:
    """One 512-bit block through the SHA-1 compression function."""
    w = list(struct.unpack(">16I", block))
    for t in range(16, 80):
        w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))

    a, b, c, d, e = h
    for t in range(80):
        if t < 20:
            f = (b & c) | (~b & d)
        elif t < 40:
            f = b ^ c ^ d
        elif t < 60:
            f = (b & c) | (b & d) | (c & d)
        else:
            f = b ^ c ^ d
        temp = (_rotl(a, 5) + f + e + w[t] + _K[t // 20]) & _MASK
        a, b, c, d, e = temp, a, _rotl(b, 30), c, d

    return (
        (h[0] + a) & _MASK,
        (h[1] + b) & _MASK,
        (h[2] + c) & _MASK,
        (h[3] + d) & _MASK,
        (h[4] + e) & _MASK,
    )


def sha1(message: bytes) -> bytes:
    """The 20-byte SHA-1 digest of ``message``."""
    h = _H_INIT
    padded = _pad(message)
    for off in range(0, len(padded), 64):
        h = _compress(h, padded[off:off + 64])
    return struct.pack(">5I", *h)


def sha1_hex(message: bytes) -> str:
    """Hex form of :func:`sha1` (convenience for tests and docs)."""
    return sha1(message).hex()
