"""Sequential UTS search: the speedup baseline (paper Sect. 4.1).

The sequential explorer is the reference for three things:

* the *correct answer* (total node count) every parallel run must match,
* the single-thread work ``T1 = n_nodes * node_visit_time`` against
  which simulated speedups are computed,
* basic tree statistics (depth, leaf count) used in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.net.model import NetworkModel
from repro.uts.params import TreeParams
from repro.uts.tree import Tree

__all__ = ["TreeStats", "count_tree", "sequential_search"]


@dataclass(frozen=True)
class TreeStats:
    """Exact statistics of one UTS tree."""

    n_nodes: int
    n_leaves: int
    max_depth: int
    #: Wall-clock seconds the *host* Python needed (not simulated time).
    host_seconds: float

    @property
    def interior(self) -> int:
        return self.n_nodes - self.n_leaves

    def simulated_t1(self, net: NetworkModel) -> float:
        """Single-thread simulated execution time on platform ``net``."""
        return self.n_nodes * net.node_visit_time


def count_tree(params: TreeParams, max_nodes: int = 500_000_000) -> TreeStats:
    """Fully traverse the tree; exact node/leaf/depth counts.

    ``max_nodes`` guards against accidentally launching a near-critical
    tree (e.g. the paper's 157-billion-node parameters) in a test.
    """
    tree = Tree(params)
    n_nodes = 0
    n_leaves = 0
    max_depth = 0
    t0 = time.perf_counter()
    stack = [tree.root()]
    pop = stack.pop
    extend = stack.extend
    children = tree.children
    while stack:
        node = pop()
        n_nodes += 1
        if n_nodes > max_nodes:
            raise RuntimeError(
                f"tree exceeded max_nodes={max_nodes}; "
                f"params too close to critical: {params.describe()}"
            )
        if node[1] > max_depth:
            max_depth = node[1]
        kids = children(node)
        if kids:
            extend(kids)
        else:
            n_leaves += 1
    return TreeStats(n_nodes=n_nodes, n_leaves=n_leaves, max_depth=max_depth,
                     host_seconds=time.perf_counter() - t0)


def sequential_search(params: TreeParams) -> int:
    """Node count only (thin wrapper kept for API symmetry)."""
    return count_tree(params).n_nodes
