"""Speed profiles: per-rank visit-cost multipliers for heterogeneous
machines.

A profile spec is a string ``"name"`` or ``"name:factor"`` expanded at
run time against the thread count (so one scenario definition covers
every machine size):

* ``"uniform"`` -- all 1.0 (the homogeneous baseline; factor ignored);
* ``"half-slow:F"`` -- ranks in the upper half cost ``F`` times the
  baseline (a machine with one slow socket);
* ``"alternating:F"`` -- odd ranks cost ``F`` (slow hyperthread
  siblings / asymmetric big.LITTLE pairs);
* ``"graded:F"`` -- costs ramp linearly from 1.0 at rank 0 to ``F`` at
  the last rank (progressive thermal throttling).

>>> build_speed_factors("half-slow:4", 4)
(1.0, 1.0, 4.0, 4.0)
>>> build_speed_factors("alternating:2", 4)
(1.0, 2.0, 1.0, 2.0)
>>> build_speed_factors("graded:3", 3)
(1.0, 2.0, 3.0)
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigError

__all__ = ["SPEED_PROFILES", "build_speed_factors"]


def _uniform(n: int, factor: float) -> Tuple[float, ...]:
    return (1.0,) * n


def _half_slow(n: int, factor: float) -> Tuple[float, ...]:
    return tuple(factor if r >= n / 2 else 1.0 for r in range(n))


def _alternating(n: int, factor: float) -> Tuple[float, ...]:
    return tuple(factor if r % 2 else 1.0 for r in range(n))


def _graded(n: int, factor: float) -> Tuple[float, ...]:
    if n == 1:
        return (1.0,)
    step = (factor - 1.0) / (n - 1)
    return tuple(1.0 + r * step for r in range(n))


SPEED_PROFILES = {
    "uniform": _uniform,
    "half-slow": _half_slow,
    "alternating": _alternating,
    "graded": _graded,
}


def build_speed_factors(spec: str, threads: int) -> Tuple[float, ...]:
    """Expand a profile spec against ``threads`` ranks."""
    name, _, param = spec.partition(":")
    builder = SPEED_PROFILES.get(name)
    if builder is None:
        raise ConfigError(
            f"unknown speed profile {name!r}; "
            f"registered: {sorted(SPEED_PROFILES)}"
        )
    factor = 1.0
    if param:
        try:
            factor = float(param)
        except ValueError:
            raise ConfigError(
                f"speed-profile factor must be a number, got {spec!r}"
            ) from None
        if not factor > 0:
            raise ConfigError(
                f"speed-profile factor must be > 0, got {factor!r}"
            )
    if threads < 1:
        raise ConfigError(f"threads must be >= 1, got {threads}")
    return builder(threads, factor)
