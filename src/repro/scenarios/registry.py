"""The scenario registry: named machine/policy/adversary bundles.

A :class:`Scenario` is declarative -- just strings naming a machine
preset, registry policy keys, a speed profile, and an adversary
assignment.  :meth:`Scenario.apply` overlays those onto a base
:class:`~repro.ws.config.WsConfig` for a given thread count, and
:func:`run_scenario` / :func:`check_scenario` run one under the normal
driver or under the PR 5 invariant monitor.

The catalog below is documented scenario-by-scenario in
docs/scenarios.md (the CI docs job lints that every name here appears
there).

>>> from repro.scenarios.registry import get_scenario
>>> get_scenario("hostile-mix").adversaries
'slow:4@1;greedy@2;dup@3'
>>> get_scenario("nope")
Traceback (most recent call last):
    ...
repro.errors.ConfigError: unknown scenario 'nope'; registered: \
['baseline', 'dup-stealers', 'greedy-thieves', 'hostile-mix', \
'mixed-speed', 'numa-2x-locality', 'numa-2x-uniform', \
'numa-8x-locality', 'numa-8x-uniform', 'slow-worker']
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.net.model import NetworkModel
from repro.net.presets import get_preset
from repro.scenarios.adversaries import parse_adversaries
from repro.scenarios.profiles import build_speed_factors
from repro.ws.config import WsConfig

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "run_scenario",
           "check_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A named, declarative machine/policy/adversary bundle."""

    name: str
    #: One-line what-it-models summary (mirrored in docs/scenarios.md).
    description: str
    #: The motivating source (paper section or related work).
    paper: str
    #: Machine preset key (:data:`repro.net.presets.PRESETS`).
    preset: str = "kittyhawk"
    #: Policy keys overlaid on the config (None keeps the algorithm's
    #: native policy).
    victim_policy: Optional[str] = None
    steal_policy: Optional[str] = None
    termination_policy: Optional[str] = None
    #: Speed-profile spec (:mod:`repro.scenarios.profiles`) or None.
    speed_profile: Optional[str] = None
    #: Adversary assignment spec (:mod:`repro.scenarios.adversaries`)
    #: or None.
    adversaries: Optional[str] = None
    #: Which invariants the scenario is expected to hold (all of them,
    #: for every scenario -- stated explicitly so the catalog can say
    #: so per entry).
    invariants: str = "I1-I5"

    def network(self) -> NetworkModel:
        """The scenario's machine model."""
        return get_preset(self.preset)

    def apply(self, cfg: WsConfig, threads: int) -> WsConfig:
        """Overlay this scenario onto a base config for ``threads``
        ranks (speed profiles and adversary ranks expand against the
        thread count here)."""
        kw = {}
        if self.victim_policy is not None:
            kw["victim_policy"] = self.victim_policy
        if self.steal_policy is not None:
            kw["steal_policy"] = self.steal_policy
        if self.termination_policy is not None:
            kw["termination_policy"] = self.termination_policy
        if self.speed_profile is not None:
            kw["speed_factors"] = build_speed_factors(
                self.speed_profile, threads)
        if self.adversaries is not None:
            kw["adversaries"] = parse_adversaries(self.adversaries, threads)
        return replace(cfg, **kw) if kw else cfg


SCENARIOS: Dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario, or ConfigError naming the catalog."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; registered: {sorted(SCENARIOS)}"
        ) from None


_register(Scenario(
    name="baseline",
    description="The paper's homogeneous Kitty Hawk cluster, native "
                "policies, no adversaries (the pinned-schedule anchor).",
    paper="Sect. 4.1",
))

_register(Scenario(
    name="numa-2x-uniform",
    description="Mild steal-cost asymmetry (off-node 2x Kitty Hawk) "
                "with uniform-random victim selection.",
    paper="Sect. 6.2 (locality motivation)",
    preset="numa-2x",
    victim_policy="uniform",
))

_register(Scenario(
    name="numa-2x-locality",
    description="Mild steal-cost asymmetry with locality-aware "
                "(on-node-first) victim selection.",
    paper="Sect. 6.2",
    preset="numa-2x",
    victim_policy="hierarchical",
))

_register(Scenario(
    name="numa-8x-uniform",
    description="Severe steal-cost asymmetry (off-node 8x) with "
                "uniform-random victim selection.",
    paper="Sect. 6.2",
    preset="numa-8x",
    victim_policy="uniform",
))

_register(Scenario(
    name="numa-8x-locality",
    description="Severe steal-cost asymmetry with locality-aware "
                "victim selection (the case locality should win).",
    paper="Sect. 6.2",
    preset="numa-8x",
    victim_policy="hierarchical",
))

_register(Scenario(
    name="mixed-speed",
    description="Heterogeneous cores: the upper half of the ranks "
                "visit nodes 4x slower (one slow socket).",
    paper="UTS follow-up work on heterogeneous clusters",
    speed_profile="half-slow:4",
))

_register(Scenario(
    name="slow-worker",
    description="A single rank 8x slower than the rest; the balance "
                "path must drain its releases.",
    paper="adversarial hardening",
    adversaries="slow:8@1",
))

_register(Scenario(
    name="greedy-thieves",
    description="Two ranks whose steals always take everything "
                "available, concentrating load.",
    paper="adversarial hardening",
    adversaries="greedy@1,2",
))

_register(Scenario(
    name="dup-stealers",
    description="Two ranks that double every steal/request, stressing "
                "the race and denial paths.",
    paper="adversarial hardening",
    adversaries="dup@1,2",
))

_register(Scenario(
    name="hostile-mix",
    description="One slow (4x), one greedy, and one duplicating rank "
                "at once, on the NUMA-2x machine.",
    paper="adversarial hardening",
    preset="numa-2x",
    adversaries="slow:4@1;greedy@2;dup@3",
))


def run_scenario(name: str, variant: str, *, tree, threads: int = 8,
                 chunk_size: int = 4, verify: bool = True, **kwargs):
    """Run one algorithm under a scenario via the normal driver."""
    from repro.harness.runner import run_experiment
    scenario = get_scenario(name)
    cfg = scenario.apply(WsConfig(chunk_size=chunk_size), threads)
    return run_experiment(variant, tree=tree, threads=threads,
                          preset=scenario.preset, config=cfg,
                          verify=verify, **kwargs)


def check_scenario(name: str, variant: str, **kwargs):
    """Run one algorithm under a scenario with the invariant monitor
    attached (see :func:`repro.check.runner.check_run`)."""
    from repro.check.runner import check_run
    return check_run(variant, scenario=name, **kwargs)
