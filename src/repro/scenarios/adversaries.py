"""Adversarial worker actors: hostile ranks injected into a run.

Each adversary is installed onto an algorithm instance at construction
(after every protocol object exists) and perturbs exactly one per-rank
table the algorithms already consult, so the protocol code has no
adversary-specific branches and the invariant monitor (I1-I5) applies
unchanged -- that is the point: a correct protocol must conserve work
and terminate cleanly *regardless* of how individual ranks behave
within the protocol's rules.

Three actor classes (docs/scenarios.md has the catalog entries):

* ``slow`` -- a rank whose node visits cost ``factor`` times the
  baseline (a thermally-throttled or oversubscribed core).  Stresses
  the load-balance path: everyone else must drain the slow rank's
  releases.
* ``greedy`` -- a thief whose steal amount is always *everything
  available* (:func:`repro.ws.policies.steal_all`).  Stresses work
  diffusion: one raid concentrates a victim's surplus on one rank.
* ``dup`` -- a duplicating stealer: every successful steal (UPC) or
  outstanding request (MPI) is immediately followed by a redundant
  duplicate aimed at the same victim.  Stresses the race/denial paths
  that normally fire only under contention.

Spec grammar (used by ``WsConfig.adversaries`` entries, scenario
definitions, and the fuzzer's ``--adversaries`` flag)::

    spec      := clause (";" clause)*
    clause    := kind [":" param] "@" ranks
    ranks     := rank ("," rank)*      # int, or "last" / "mid"

e.g. ``"slow:4@1;greedy@2;dup@last"``.

>>> from repro.scenarios.adversaries import parse_adversaries
>>> parse_adversaries("slow:4@1;greedy@1,2", threads=8)
((1, 'slow:4'), (1, 'greedy'), (2, 'greedy'))
>>> parse_adversaries("dup@last", threads=8)
((7, 'dup'),)
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigError
from repro.ws.policies import steal_all

__all__ = ["Adversary", "SlowWorker", "GreedyThief", "DuplicatingStealer",
           "ADVERSARIES", "parse_adversary", "parse_adversaries",
           "install_adversaries"]


class Adversary:
    """One hostile actor, bound to a rank at install time."""

    kind = "abstract"

    def install(self, algo, rank: int) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class SlowWorker(Adversary):
    """A rank whose node visits cost ``factor`` times the baseline."""

    kind = "slow"

    def __init__(self, factor: float = 8.0) -> None:
        if not factor > 0:
            raise ConfigError(f"slow factor must be > 0, got {factor!r}")
        self.factor = factor

    def install(self, algo, rank: int) -> None:
        algo._scale_speed(rank, self.factor)


class GreedyThief(Adversary):
    """A thief that always takes every available chunk."""

    kind = "greedy"

    def install(self, algo, rank: int) -> None:
        # mpi-ws ships exactly one chunk per WORK message (as in the
        # reference implementation), so the override is a documented
        # no-op there -- same caveat as WsConfig.steal_policy.
        algo._set_rank_steal(rank, steal_all)


class DuplicatingStealer(Adversary):
    """A thief that immediately re-raids (or double-requests) its
    victim after every steal."""

    kind = "dup"

    def install(self, algo, rank: int) -> None:
        algo._mark_duplicator(rank)


ADVERSARIES = {
    "slow": SlowWorker,
    "greedy": GreedyThief,
    "dup": DuplicatingStealer,
}


def parse_adversary(spec: str) -> Adversary:
    """``"kind"`` or ``"kind:param"`` -> an actor instance.

    >>> parse_adversary("slow:4").factor
    4.0
    >>> parse_adversary("evil")
    Traceback (most recent call last):
        ...
    repro.errors.ConfigError: unknown adversary 'evil'; registered: ['dup', 'greedy', 'slow']
    """
    kind, _, param = spec.partition(":")
    cls = ADVERSARIES.get(kind)
    if cls is None:
        raise ConfigError(
            f"unknown adversary {kind!r}; registered: {sorted(ADVERSARIES)}"
        )
    if not param:
        return cls()
    try:
        value = float(param)
    except ValueError:
        raise ConfigError(
            f"adversary parameter must be a number, got {spec!r}"
        ) from None
    return cls(value)


def _parse_rank(token: str, threads: int) -> int:
    if token == "last":
        return threads - 1
    if token == "mid":
        return threads // 2
    try:
        rank = int(token)
    except ValueError:
        raise ConfigError(
            f"adversary rank must be an int, 'last', or 'mid'; got {token!r}"
        ) from None
    if not 0 <= rank < threads:
        raise ConfigError(
            f"adversary rank {rank} out of range for {threads} threads"
        )
    return rank


def parse_adversaries(spec: str, threads: int) -> Tuple[Tuple[int, str], ...]:
    """Parse a full assignment spec into ``((rank, actor_spec), ...)``
    pairs -- the form :class:`~repro.ws.config.WsConfig` carries."""
    assignments = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        actor, sep, ranks = clause.partition("@")
        if not sep or not ranks:
            raise ConfigError(
                f"adversary clause needs '@ranks', got {clause!r}"
            )
        actor = actor.strip()
        parse_adversary(actor)  # validate the actor spec eagerly
        for token in ranks.split(","):
            assignments.append((_parse_rank(token.strip(), threads), actor))
    return tuple(assignments)


def install_adversaries(algo, assignments) -> None:
    """Install ``((rank, spec), ...)`` actors onto a built algorithm."""
    n = algo.machine.n_threads
    for rank, spec in assignments:
        if not 0 <= rank < n:
            raise ConfigError(
                f"adversary rank {rank} out of range for {n} threads"
            )
        parse_adversary(spec).install(algo, rank)
