"""Scenario & adversary registry: named machine/workload setups.

A *scenario* bundles the knobs the simulator already exposes -- machine
preset, victim/steal/termination policy keys, per-rank speed factors,
adversarial actors -- under one name, so an experiment cell (or a CLI
invocation) is a single string instead of a hand-assembled config.  See
docs/scenarios.md for the catalog with motivation and invariants.

>>> from repro.scenarios import get_scenario
>>> s = get_scenario("numa-8x-locality")
>>> s.preset, s.victim_policy
('numa-8x', 'hierarchical')
"""

from repro.scenarios.adversaries import (ADVERSARIES, install_adversaries,
                                         parse_adversaries, parse_adversary)
from repro.scenarios.profiles import SPEED_PROFILES, build_speed_factors
from repro.scenarios.registry import (SCENARIOS, Scenario, check_scenario,
                                      get_scenario, run_scenario)

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "run_scenario",
           "check_scenario", "ADVERSARIES", "parse_adversary",
           "parse_adversaries", "install_adversaries", "SPEED_PROFILES",
           "build_speed_factors"]
