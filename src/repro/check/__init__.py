"""Schedule-space exploration and online invariant checking.

The simulator executes exactly one legal interleaving per
configuration: simultaneous events run in FIFO ``_seq`` order.  That
determinism is what makes runs reproducible -- and also what lets
interleaving bugs hide.  This package explores the *other* legal
schedules:

* :mod:`repro.check.tiebreak` -- pluggable heap tie-break policies
  (seeded random permutations, bounded delays from canonical).
* :mod:`repro.check.invariants` -- an online
  :class:`~repro.check.invariants.InvariantMonitor` that rides the
  trace-hook sites and checks conservation, ownership, termination
  soundness, and lock pairing *during* the run.
* :mod:`repro.check.runner` -- :func:`~repro.check.runner.check_run`,
  one fuzz cell as a pure function.
* :mod:`repro.check.shrink` -- delta-debugging failing cells down to
  committed regression tests.

Driver: ``tools/check_schedules.py``.  Catalog and workflow:
``docs/correctness.md``.
"""

from repro.check.invariants import InvariantMonitor
from repro.check.runner import (VARIANTS, CheckOutcome, check_run,
                               check_service_run)
from repro.check.shrink import ShrinkResult, reproducer_source, shrink
from repro.check.tiebreak import DelayTieBreak, FifoTieBreak, RandomTieBreak

__all__ = [
    "CheckOutcome",
    "DelayTieBreak",
    "FifoTieBreak",
    "InvariantMonitor",
    "RandomTieBreak",
    "ShrinkResult",
    "VARIANTS",
    "check_run",
    "check_service_run",
    "reproducer_source",
    "shrink",
]
