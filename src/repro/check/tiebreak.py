"""Tie-break policies for schedule-space exploration.

The engine orders its event heap by ``(time, key)``.  The default key
is the monotone sequence number ``seq`` -- FIFO among simultaneous
events, the canonical bit-identical schedule.  A *tie-break policy* is
a callable ``seq -> key`` installed via ``Simulator(tie_break=...)``
that substitutes a different key, reordering events that share a
timestamp while leaving the time axis untouched.  Every legal
reordering produced this way is a schedule a real machine could
exhibit: simultaneous events in the simulation model concurrent
hardware activity with no defined order.

Policies must be injective over ``seq`` (include ``seq`` in the key)
and must return mutually comparable keys for the lifetime of one
simulator.

Two explorers are provided:

* :class:`RandomTieBreak` -- a seeded hash permutes every batch of
  simultaneous events; one integer seed = one reproducible schedule.
* :class:`DelayTieBreak` -- defers a chosen set of events behind all
  their same-timestamp peers; with a single deferred seq this walks
  the neighbourhood of the canonical schedule one bounded reordering
  at a time (the systematic mode CI uses).
"""

from __future__ import annotations

from typing import Iterable, Tuple

__all__ = ["FifoTieBreak", "RandomTieBreak", "DelayTieBreak"]

_MASK = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(x: int) -> int:
    """SplitMix64 finalizer: a high-quality 64-bit bijection."""
    x &= _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


class FifoTieBreak:
    """The identity policy: canonical FIFO order through the generic
    loop.  Exists for tests proving the generic loop replays the
    canonical schedule exactly; passing ``tie_break=None`` (the inlined
    fast path) is always preferable in production."""

    def __call__(self, seq: int) -> int:
        return seq


class RandomTieBreak:
    """Seeded pseudo-random permutation of same-timestamp events.

    The key is ``(mix(seed', seq), seq)``: the hash permutes each batch
    of simultaneous events uniformly, and the trailing ``seq`` keeps
    the mapping injective (and deterministic even under the
    astronomically unlikely hash collision).
    """

    __slots__ = ("seed", "_mixed")

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._mixed = _mix((seed & _MASK) ^ _GOLDEN)

    def __call__(self, seq: int) -> Tuple[int, int]:
        return (_mix(self._mixed + seq * _GOLDEN), seq)

    def __repr__(self) -> str:
        return f"RandomTieBreak(seed={self.seed})"


class DelayTieBreak:
    """Defer chosen events behind all simultaneous peers.

    Events whose scheduling sequence number is in ``deferred`` sort
    after every non-deferred event with the same timestamp (deferred
    events keep FIFO order among themselves).  ``DelayTieBreak([])``
    is the canonical schedule; ``DelayTieBreak([k])`` for k = 1..N is
    the delay-bound-1 neighbourhood the systematic sweep enumerates.
    """

    #: Added to a deferred seq; far above any reachable sequence number
    #: (the event budget caps runs long before 2**48 scheduled events).
    DEFER = 1 << 48

    __slots__ = ("deferred",)

    def __init__(self, deferred: Iterable[int]) -> None:
        self.deferred = frozenset(deferred)

    def __call__(self, seq: int) -> int:
        return seq + self.DEFER if seq in self.deferred else seq

    def __repr__(self) -> str:
        return f"DelayTieBreak({sorted(self.deferred)})"
