"""Online invariant checking for work-stealing runs.

:class:`InvariantMonitor` poses as a tracer (``machine.tracer``): every
hook site that already emits trace records -- stack batches, steals,
services, lock transitions, barrier/termination announcements, fault
injections -- drives the checks *during* the run, at the exact emit
where a protocol transition completed.  Traced runs are pinned
bit-identical to untraced runs (tracers only append to a list), so
attaching the monitor never perturbs the schedule it is checking.

Checked invariants (see ``docs/correctness.md`` for the catalog):

I1  Node conservation (global), closed over steals-in-flight::

        sum(total_nodes) == sum(pushes) - sum(pops)
                            - sum(stolen_from_me) - lost_from_stacks

    On service runs (``algo.service`` present) the same idea extends
    to tasks: ``admitted == completed + lost + shed + in-system`` at
    every emit, where in-system covers queued, retrying, running, and
    blocked-at-the-door tasks.

I2  Per-stack shared-region ledger (live ranks)::

        shared_nodes == released - reacquired - stolen_from_me
        local_size   == pushes - pops - released + reacquired

I3  Single owner per node: no node descriptor appears twice across all
    local regions, shared chunks, and the fault layer's in-flight
    transfer journals.

I4  No termination while work remains: at every termination
    announcement, all live stacks are empty, nothing is in flight, and
    (mpi-ws) no WORK message is pending in any mailbox.

I5  Lock acquire/release pairing: a lock is released only by its
    current holder and never acquired while held (fail-stops forgive
    the corpse's holdings, mirroring ``GlobalLock.on_thread_death``).

Relaxed forms (algorithms with ``multiplicity_relaxed = True``, i.e.
fence-free stealing where a chunk may legitimately be extracted more
than once but never lost):

I1' Duplication ledger consistency: the per-node extra-copy allowances
    the algorithm granted sum to exactly its total duplicated work
    (``sum(dup_extra.values()) == dup_work``), and the duplicated
    chunk-node count never exceeds the duplicated subtree work
    (``dup_nodes <= dup_work``).  The strict I1 stack ledger still
    holds verbatim -- duplicate copies enter through regular pushes.

I3' Bounded multiplicity per node: a node descriptor may appear at
    most ``1 + dup_extra[node]`` times across all local regions,
    shared chunks, and in-flight transfer journals.  Unbounded or
    unaccounted duplication is still a violation; only the exact,
    ledgered copies the protocol's racy window produced are allowed.

A violation raises :class:`~repro.errors.InvariantViolation` from
inside the run, freezing the schedule at the first inconsistent state.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InvariantViolation

__all__ = ["InvariantMonitor"]

#: Emits that mark a protocol transition worth a full ownership scan
#: (cheap emits like ``visit`` fall back to the periodic scan).
_SCAN_KINDS = frozenset({"steal", "service", "chunk.get"})
#: Emits that declare (or relay) global termination.  ``service.close``
#: is the open-system analogue: the stream's exact drain declaration;
#: ``tsplit.term`` is tree-split's empty rebalance round.
_TERM_KINDS = frozenset({"sbarrier.announce", "cbarrier.terminate",
                         "mpi.term", "service.close", "tsplit.term"})
#: Emits after which a rank's lock holdings are forgiven (fail-stop).
_DEATH_KINDS = frozenset({"fault.kill", "sim.interrupt"})


class InvariantMonitor:
    """Tracer-shaped online checker; bind with ``tracer=monitor``.

    The harness calls :meth:`attach_algorithm` right after the
    algorithm is constructed (see ``run_experiment``), giving the
    monitor white-box access to the stacks, counters, and fault
    ledgers the invariants are phrased over.
    """

    def __init__(self, scan_period: int = 64) -> None:
        #: Tracer protocol: hook sites test this before formatting.
        self.enabled = True
        self.scan_period = scan_period
        self.algo = None
        self.machine = None
        #: Lock name -> holder rank (I5).
        self._holders: dict[str, int] = {}
        #: Per-kind emit counts (observability + final_check evidence).
        self.counts: dict[str, int] = {}
        #: Number of invariant evaluations performed.
        self.checks = 0
        self.terminations_seen = 0
        self._emits = 0
        self._scannable = True  # cleared if node descriptors unhashable
        #: True once bound to a multiplicity-relaxed algorithm: the
        #: ownership scan checks the bounded form I3' and the ledger
        #: pass adds the I1' duplication checks.
        self._relaxed = False

    # -- binding -----------------------------------------------------------

    def attach_algorithm(self, algo) -> None:
        self.algo = algo
        self.machine = algo.machine
        self._relaxed = bool(getattr(algo, "multiplicity_relaxed", False))

    # -- tracer protocol ---------------------------------------------------

    def emit(self, time: float, thread: int, kind: str, detail: str = "") -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        algo = self.algo
        if algo is None:
            return
        self._emits += 1
        if kind == "lock.acq":
            holder = self._holders.get(detail)
            if holder is not None:
                self._fail(time, kind,
                           f"T{thread} acquired lock {detail!r} already "
                           f"held by T{holder}")
            self._holders[detail] = thread
        elif kind == "lock.rel":
            holder = self._holders.pop(detail, None)
            if holder != thread:
                self._fail(time, kind,
                           f"T{thread} released lock {detail!r} held by "
                           f"{'nobody' if holder is None else f'T{holder}'}")
        elif kind in _DEATH_KINDS:
            # Fail-stop: the runtime frees the corpse's locks with no
            # lock.rel emit; forgive them here so the successor's
            # lock.acq is not misread as a double acquire.
            self._holders = {name: r for name, r in self._holders.items()
                             if r != thread}
        self._check_ledgers(time, kind)
        if kind in _TERM_KINDS:
            self.terminations_seen += 1
            self._check_termination(time, thread, kind)
            self._scan_ownership(time, kind)
        elif kind in _SCAN_KINDS or self._emits % self.scan_period == 0:
            self._scan_ownership(time, kind)

    # -- invariants --------------------------------------------------------

    def _fail(self, time: float, kind: str, msg: str) -> None:
        raise InvariantViolation(
            f"[t={time:.6f} at {kind!r} emit #{self._emits}] {msg}")

    def _check_ledgers(self, time: float, kind: str) -> None:
        """I1 + I2 + in_flight sanity, at every emit."""
        algo = self.algo
        faults = self.machine.faults
        dead = faults.dead if faults is not None else ()
        lost_stack = faults._lost_stack_nodes if faults is not None else 0
        total = pushes = pops = stolen = 0
        for rank, stack in enumerate(algo.stacks):
            shared_nodes = sum(len(c) for c in stack.shared)
            total += len(stack.local) + shared_nodes
            pushes += stack.pushes
            pops += stack.pops
            stolen += stack.stolen_from_me_nodes
            if rank in dead:
                # A fail-stopped stack was cleared by the loss
                # accountant; its counters are frozen mid-ledger.
                continue
            if shared_nodes != (stack.released_nodes - stack.reacquired_nodes
                                - stack.stolen_from_me_nodes):
                self._fail(
                    time, kind,
                    f"T{rank} shared-region ledger: holds {shared_nodes} "
                    f"node(s), expected released({stack.released_nodes}) "
                    f"- reacquired({stack.reacquired_nodes}) "
                    f"- stolen({stack.stolen_from_me_nodes})")
            expect_local = (stack.pushes - stack.pops
                            - stack.released_nodes + stack.reacquired_nodes)
            if len(stack.local) != expect_local:
                self._fail(
                    time, kind,
                    f"T{rank} local-region ledger: holds "
                    f"{len(stack.local)} node(s), expected {expect_local} "
                    f"(pushes={stack.pushes} pops={stack.pops} "
                    f"released={stack.released_nodes} "
                    f"reacquired={stack.reacquired_nodes})")
        expected = pushes - pops - stolen - lost_stack
        if total != expected:
            self._fail(
                time, kind,
                f"global conservation: stacks hold {total} node(s) but "
                f"ledger expects {expected} (pushes={pushes} pops={pops} "
                f"stolen={stolen} lost_from_stacks={lost_stack})")
        if algo.in_flight_nodes < 0:
            self._fail(time, kind,
                       f"in_flight_nodes negative ({algo.in_flight_nodes})")
        if self._relaxed:
            # I1': the duplication ledger must be internally exact --
            # every granted extra-copy allowance traces to duplicated
            # subtree work, and chunk-level counts bound subtree work.
            if not getattr(algo, "_dup_unhashable", False):
                extra_sum = sum(algo.dup_extra.values())
                if extra_sum != algo.dup_work:
                    self._fail(
                        time, kind,
                        f"I1' duplication ledger: per-node extras sum to "
                        f"{extra_sum} but dup_work={algo.dup_work}")
            if algo.dup_nodes > algo.dup_work:
                self._fail(
                    time, kind,
                    f"I1' duplication ledger: dup_nodes={algo.dup_nodes} "
                    f"exceeds dup_work={algo.dup_work}")
        if faults is not None:
            on_stack = faults.counters.lost_nodes_on_stack
            in_flight = faults.counters.lost_nodes_in_flight
            if faults.counters.lost_nodes != on_stack + in_flight:
                self._fail(
                    time, kind,
                    f"loss attribution: {faults.counters.lost_nodes} lost "
                    f"node(s) but on_stack={on_stack} "
                    f"+ in_flight={in_flight}")
        svc = getattr(algo, "service", None)
        if svc is not None:
            # I1, extended over the open system: every admitted task is
            # in exactly one state at every observable instant.
            accounted = (svc.completed + svc.lost_tasks + svc.shed_total
                         + svc.in_system)
            if svc.admitted != accounted:
                self._fail(
                    time, kind,
                    f"task conservation: admitted {svc.admitted} != "
                    f"completed({svc.completed}) + lost({svc.lost_tasks}) "
                    f"+ shed({svc.shed_total}) + queued({len(svc.queue)}) "
                    f"+ retrying({svc.retry_pending}) "
                    f"+ running({svc.running}) "
                    f"+ blocked({svc.door_blocked})")
        self.checks += 1

    def _scan_ownership(self, time: float, kind: str) -> None:
        """I3: every node descriptor lives in exactly one place.

        Multiplicity-relaxed algorithms get the bounded form I3'
        instead (:meth:`_scan_multiplicity`)."""
        if not self._scannable:
            return
        if self._relaxed:
            self._scan_multiplicity(time, kind)
            return
        algo = self.algo
        owner: dict = {}
        try:
            for rank, stack in enumerate(algo.stacks):
                for node in stack.local:
                    prev = owner.get(node)
                    if prev is not None:
                        self._fail(time, kind,
                                   f"node {node!r} owned twice: {prev} "
                                   f"and T{rank}.local")
                    owner[node] = f"T{rank}.local"
                for chunk in stack.shared:
                    for node in chunk:
                        prev = owner.get(node)
                        if prev is not None:
                            self._fail(time, kind,
                                       f"node {node!r} owned twice: {prev} "
                                       f"and T{rank}.shared")
                        owner[node] = f"T{rank}.shared"
        except TypeError:
            # Custom search space with unhashable nodes: ownership
            # scanning is not applicable; ledgers still run.
            self._scannable = False
            return
        faults = self.machine.faults
        if faults is not None:
            for rank, nodes in faults._open_transfer.items():
                for node in nodes:
                    prev = owner.get(node)
                    if prev is not None:
                        self._fail(time, kind,
                                   f"node {node!r} owned twice: {prev} and "
                                   f"T{rank}.open_transfer")
                    owner[node] = f"T{rank}.open_transfer"
            for thief, nodes in faults._responses.items():
                for node in nodes:
                    prev = owner.get(node)
                    if prev is not None:
                        self._fail(time, kind,
                                   f"node {node!r} owned twice: {prev} and "
                                   f"T{thief}.response")
                    owner[node] = f"T{thief}.response"
        self.checks += 1

    def _scan_multiplicity(self, time: float, kind: str) -> None:
        """I3': a node may appear at most ``1 + dup_extra[node]`` times.

        The +1 is the node's original; every extra appearance must be
        covered by an allowance the algorithm ledgered at the exact
        duplicate-extraction instant (``steal.dup``).  The allowance
        only ever grows, so the bound is sound at every scan even after
        copies (or originals) have been visited and consumed.
        """
        algo = self.algo
        if getattr(algo, "_dup_unhashable", False):
            # Per-node accounting was abandoned (unhashable custom
            # descriptors); the scan is meaningless too.
            self._scannable = False
            return
        counts: dict = {}
        try:
            for stack in algo.stacks:
                for node in stack.local:
                    counts[node] = counts.get(node, 0) + 1
                for chunk in stack.shared:
                    for node in chunk:
                        counts[node] = counts.get(node, 0) + 1
        except TypeError:
            self._scannable = False
            return
        faults = self.machine.faults
        if faults is not None:
            for nodes in faults._open_transfer.values():
                for node in nodes:
                    counts[node] = counts.get(node, 0) + 1
            for nodes in faults._responses.values():
                for node in nodes:
                    counts[node] = counts.get(node, 0) + 1
        extra = algo.dup_extra
        for node, cnt in counts.items():
            if cnt > 1:
                allowed = 1 + extra.get(node, 0)
                if cnt > allowed:
                    self._fail(
                        time, kind,
                        f"I3' multiplicity: node {node!r} appears {cnt} "
                        f"time(s) but only {allowed} allowed "
                        f"(1 original + {allowed - 1} ledgered cop"
                        f"{'y' if allowed == 2 else 'ies'})")
        self.checks += 1

    def _check_termination(self, time: float, thread: int, kind: str) -> None:
        """I4: the declaring instant must be globally work-free."""
        algo = self.algo
        faults = self.machine.faults
        dead = faults.dead if faults is not None else ()
        for rank, stack in enumerate(algo.stacks):
            if rank in dead:
                continue
            held = len(stack.local) + sum(len(c) for c in stack.shared)
            if held:
                self._fail(time, kind,
                           f"T{thread} declared termination while T{rank} "
                           f"holds {held} unprocessed node(s)")
        if algo.in_flight_nodes:
            self._fail(time, kind,
                       f"T{thread} declared termination with "
                       f"{algo.in_flight_nodes} node(s) in flight")
        svc = getattr(algo, "service", None)
        if svc is not None and svc.in_system:
            self._fail(time, kind,
                       f"T{thread} declared termination with "
                       f"{svc.in_system} task(s) still in the system "
                       f"(queue={len(svc.queue)} "
                       f"retrying={svc.retry_pending} "
                       f"running={svc.running} "
                       f"blocked={svc.door_blocked})")
        world = getattr(algo, "world", None)
        if world is not None:
            for rank, pending in enumerate(world._pending):
                stray = [m for (_, _, m) in pending if m.tag == "WORK"]
                if stray:
                    self._fail(time, kind,
                               f"T{thread} declared termination with "
                               f"{len(stray)} WORK message(s) pending for "
                               f"T{rank}")
        self.checks += 1

    # -- end of run --------------------------------------------------------

    def final_check(self) -> None:
        """Post-run assertions for a run that completed without error."""
        if self.algo is None:
            raise InvariantViolation("monitor was never attached to a run")
        now = self.machine.sim.now
        if self.terminations_seen == 0:
            self._fail(now, "final",
                       "run completed but no termination was ever declared "
                       f"(kinds seen: {sorted(self.counts)})")
        if self._holders:
            self._fail(now, "final", f"locks still held: {self._holders}")
        self._check_ledgers(now, "final")
        self._check_termination(now, -1, "final")
        self._scan_ownership(now, "final")

    def summary(self) -> dict:
        return {
            "checks": self.checks,
            "emits": self._emits,
            "terminations_seen": self.terminations_seen,
            "ownership_scans": self._scannable,
        }
