"""Shrink a failing fuzz cell to a minimal reproducer.

Given a cell (keyword dict for :func:`repro.check.runner.check_run`)
whose run fails, produce the smallest cell that still fails with the
*same error class*:

1. **Fault minimization** -- greedily drop ``fault_spec`` clauses
   (ddmin over the comma-separated items) while the failure persists.
2. **Budget minimization** -- binary-search the smallest ``max_events``
   that still reaches the failure.  Below the minimum the run dies
   with ``EventLimitExceeded`` instead, so the search converges on the
   exact number of events the reproducer needs.
3. **Emission** -- render a ready-to-paste pytest case asserting the
   cell now passes (the form regression tests take once the bug is
   fixed), with the generating parameters in the docstring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.check.runner import CheckOutcome, check_run

__all__ = ["ShrinkResult", "shrink", "reproducer_source"]


@dataclass
class ShrinkResult:
    """A minimized failing cell plus the evidence trail."""

    cell: dict
    error_type: str
    error: str
    runs: int = 0
    #: (description, cell, error_type) per shrink step, for the report.
    trail: list = field(default_factory=list)


def _fails_like(outcome: CheckOutcome, error_type: str) -> bool:
    return (not outcome.ok) and outcome.error_type == error_type


def shrink(cell: dict,
           runner: Callable[..., CheckOutcome] = check_run,
           max_runs: int = 64) -> ShrinkResult:
    """Minimize ``cell``; raises ``ValueError`` if it does not fail."""
    cell = dict(cell)
    baseline = runner(**cell)
    if baseline.ok:
        raise ValueError(f"cell does not fail: {cell!r}")
    target = baseline.error_type
    result = ShrinkResult(cell=cell, error_type=target,
                          error=baseline.error or "", runs=1)
    result.trail.append(("baseline", dict(cell), target))

    # 1. Drop fault-spec clauses one at a time (greedy ddmin).
    spec = cell.get("fault_spec")
    if spec:
        items = [s for s in spec.split(",") if s.strip()]
        keep = list(items)
        i = 0
        while i < len(keep) and result.runs < max_runs:
            trial = keep[:i] + keep[i + 1:]
            trial_cell = dict(cell)
            if trial:
                trial_cell["fault_spec"] = ",".join(trial)
            else:
                trial_cell.pop("fault_spec", None)
                trial_cell.pop("fault_seed", None)
            out = runner(**trial_cell)
            result.runs += 1
            if _fails_like(out, target):
                keep = trial
                cell = trial_cell
                result.error = out.error or result.error
                result.trail.append((f"dropped fault clause {items[i]!r}",
                                     dict(cell), target))
            else:
                i += 1

    # 2. Binary-search the minimal event budget.  The failing run's
    # events_processed bounds the search from above; below the minimum
    # the run degenerates to EventLimitExceeded (a different type).
    probe = runner(**cell)
    result.runs += 1
    if _fails_like(probe, target) and probe.engine_events > 0 \
            and target != "EventLimitExceeded":
        lo, hi = 1, max(probe.engine_events + 1, 2)
        while lo < hi and result.runs < max_runs:
            mid = (lo + hi) // 2
            out = runner(**{**cell, "max_events": mid})
            result.runs += 1
            if _fails_like(out, target):
                hi = mid
                result.error = out.error or result.error
            else:
                lo = mid + 1
        cell = {**cell, "max_events": lo}
        result.trail.append((f"minimal max_events={lo}", dict(cell), target))

    result.cell = cell
    return result


def _cell_literal(cell: dict) -> str:
    parts = [f"{k}={v!r}" for k, v in sorted(cell.items())]
    return ",\n        ".join(parts)


def reproducer_source(cell: dict, error_type: str, error: str,
                      test_name: str,
                      note: Optional[str] = None) -> str:
    """Render the shrunk cell as a pytest regression case.

    The emitted test asserts the cell *passes* -- paste it under
    ``tests/check/regressions/`` once the underlying bug is fixed, and
    it pins the fix forever.  The docstring records the generating
    parameters so the failure predates the fix in the history.
    """
    doc = [f"Shrunk reproducer: {error_type} under schedule exploration."]
    if note:
        doc.append(note)
    doc.append(f"Generating cell: {cell!r}")
    doc.append(f"Failure before fix: {error_type}: {error}")
    docstring = "\n\n    ".join(doc)
    return f'''def test_{test_name}():
    """{docstring}
    """
    out = check_run(
        {_cell_literal(cell)},
    )
    assert out.ok, f"{{out.error_type}}: {{out.error}}"
'''
