"""One fuzz cell = one checked run; the bridge between the fuzzing
driver and ``run_experiment``.

:func:`check_run` executes a single (variant, schedule, fault-plan)
cell with the :class:`~repro.check.invariants.InvariantMonitor`
attached and every error class the harness can raise folded into a
:class:`CheckOutcome` -- the fuzzer and the shrinker treat runs as
pure functions from cell parameters to outcome, which is what makes
delta-debugging them trivial.

A *cell* is just the keyword arguments of :func:`check_run`; shrunk
reproducers serialize it as a dict literal (see
:func:`repro.check.shrink.reproducer_source`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.check.invariants import InvariantMonitor
from repro.check.tiebreak import DelayTieBreak, RandomTieBreak

__all__ = ["CheckOutcome", "check_run", "check_service_run", "VARIANTS"]

#: Every registered algorithm label, figure order then extensions.
VARIANTS = ("upc-sharedmem", "upc-term", "upc-term-rapdif",
            "upc-distmem", "upc-distmem-hier", "mpi-ws",
            "ws-fencefree", "tree-split")


@dataclass
class CheckOutcome:
    """Everything the fuzzer needs to know about one checked run."""

    ok: bool
    variant: str
    error_type: Optional[str] = None
    error: Optional[str] = None
    engine_events: int = 0
    total_nodes: int = 0
    sim_time: float = 0.0
    lost_work: int = 0
    #: Ledgered duplicated work (multiplicity-relaxed variants only).
    dup_work: int = 0
    monitor: dict = field(default_factory=dict)

    def label(self) -> str:
        if self.ok:
            return (f"ok events={self.engine_events} "
                    f"nodes={self.total_nodes}")
        return f"{self.error_type}: {self.error}"


def check_run(
    variant: str,
    *,
    threads: int = 8,
    chunk_size: int = 4,
    preset: str = "kittyhawk",
    b0: int = 64,
    q: float = 0.48,
    m: int = 2,
    tree_seed: int = 1,
    seed: int = 0,
    schedule_seed: Optional[int] = None,
    defer: Sequence[int] = (),
    fault_spec: Optional[str] = None,
    fault_seed: int = 0,
    max_events: int = 500_000,
    verify: bool = True,
    idle_strategy: str = "poll",
    queue: str = "auto",
    scenario: Optional[str] = None,
) -> CheckOutcome:
    """Run one invariant-checked cell; never raises a protocol error.

    ``schedule_seed`` selects a :class:`RandomTieBreak` permutation;
    ``defer`` (mutually exclusive in practice, checked here) selects a
    :class:`DelayTieBreak` bounded reordering; neither gives the
    canonical schedule.  ``fault_spec`` is the
    :func:`repro.faults.plan.parse_fault_spec` grammar.
    ``idle_strategy`` ("poll" or "park") and ``queue`` ("auto", "heap",
    "bucket") extend the cell space over the O(active) engine: park
    cells fuzz the event-driven wakeup paths, and forcing a queue
    backend cross-checks dispatch order against the default.

    ``scenario`` names a :data:`repro.scenarios.SCENARIOS` entry: its
    machine preset replaces ``preset`` and its policy/speed/adversary
    overlays are applied to the config, so every catalog scenario can
    be fuzzed cell-for-cell like the baseline.

    Errors caught: every :class:`~repro.errors.ReproError` subclass --
    invariant violations, protocol assertions, deadlocks, event-budget
    exhaustion, verification mismatches.  Anything else (a genuine
    crash) propagates.
    """
    # Imported here: repro.check must stay importable without pulling
    # the whole harness (docs tooling imports the policies alone).
    from repro.faults.plan import parse_fault_spec
    from repro.harness.runner import run_experiment
    from repro.uts.params import TreeParams
    from repro.ws.config import WsConfig

    if schedule_seed is not None and defer:
        raise ValueError("schedule_seed and defer are mutually exclusive")
    tie_break = None
    if schedule_seed is not None:
        tie_break = RandomTieBreak(schedule_seed)
    elif defer:
        tie_break = DelayTieBreak(defer)
    plan = parse_fault_spec(fault_spec, seed=fault_seed) if fault_spec else None
    monitor = InvariantMonitor()
    tree = TreeParams.binomial(b0=b0, m=m, q=q, seed=tree_seed)
    cfg = WsConfig(chunk_size=chunk_size, idle_strategy=idle_strategy)
    if scenario is not None:
        from repro.scenarios import get_scenario
        sc = get_scenario(scenario)
        preset = sc.preset
        cfg = sc.apply(cfg, threads)
    try:
        res = run_experiment(
            variant, tree=tree, threads=threads, preset=preset,
            config=cfg, seed=seed, verify=verify,
            tracer=monitor, max_events=max_events, faults=plan,
            tie_break=tie_break, queue=queue,
            # Fuzzer cells never run compiled fusion: the monitor's
            # emit hooks and the tie-break/fault machinery must see
            # every transition from the Python loops.  Schedules are
            # pinned bit-identical across backends, so outcomes are
            # unchanged; tests/fastpath/test_selection.py asserts
            # Simulator.fastpath_active stays False under check.
            fastpath="pure",
        )
        monitor.final_check()
    except ReproError as exc:
        events = (monitor.machine.sim.events_processed
                  if monitor.machine is not None else 0)
        return CheckOutcome(
            ok=False, variant=variant,
            error_type=type(exc).__name__, error=str(exc),
            engine_events=events, monitor=monitor.summary(),
        )
    return CheckOutcome(
        ok=True, variant=variant,
        engine_events=res.engine_events, total_nodes=res.total_nodes,
        sim_time=res.sim_time, lost_work=res.lost_work,
        dup_work=res.dup_work,
        monitor=monitor.summary(),
    )


def check_service_run(
    *,
    threads: int = 8,
    chunk_size: int = 2,
    preset: str = "kittyhawk",
    arrival_spec: str = "poisson:rate=8e5",
    n_tasks: int = 120,
    queue_capacity: int = 16,
    policy: str = "shed-oldest",
    deadline: float = 150e-6,
    max_retries: int = 2,
    service_seed: int = 3,
    seed: int = 0,
    schedule_seed: Optional[int] = None,
    defer: Sequence[int] = (),
    fault_spec: Optional[str] = None,
    fault_seed: int = 0,
    max_events: int = 500_000,
    idle_strategy: str = "park",
    queue: str = "auto",
) -> CheckOutcome:
    """:func:`check_run`'s open-system sibling: one checked service cell.

    The monitor's batch invariants (I1-I5) all apply -- the service
    pool reuses the lock-based steal protocol -- plus the extended I1
    task-conservation equation and the ``service.close`` termination
    check.  Error folding matches :func:`check_run`: every
    :class:`~repro.errors.ReproError` becomes a not-ok outcome.
    """
    from repro.faults.plan import parse_fault_spec
    from repro.service import (ServiceConfig, parse_arrival_spec,
                               run_service)
    from repro.ws.config import WsConfig

    if schedule_seed is not None and defer:
        raise ValueError("schedule_seed and defer are mutually exclusive")
    tie_break = None
    if schedule_seed is not None:
        tie_break = RandomTieBreak(schedule_seed)
    elif defer:
        tie_break = DelayTieBreak(defer)
    plan = parse_fault_spec(fault_spec, seed=fault_seed) if fault_spec else None
    monitor = InvariantMonitor()
    service = ServiceConfig(
        arrivals=parse_arrival_spec(arrival_spec), n_tasks=n_tasks,
        queue_capacity=queue_capacity, policy=policy, deadline=deadline,
        max_retries=max_retries, seed=service_seed)
    cfg = WsConfig(chunk_size=chunk_size, idle_strategy=idle_strategy)
    try:
        res = run_service(
            service, threads=threads, preset=preset, config=cfg, seed=seed,
            tracer=monitor, max_events=max_events, faults=plan,
            tie_break=tie_break, queue=queue,
            fastpath="pure",  # same contract as check_run above
        )
        monitor.final_check()
    except ReproError as exc:
        events = (monitor.machine.sim.events_processed
                  if monitor.machine is not None else 0)
        return CheckOutcome(
            ok=False, variant="service-ws",
            error_type=type(exc).__name__, error=str(exc),
            engine_events=events, monitor=monitor.summary(),
        )
    return CheckOutcome(
        ok=True, variant="service-ws",
        engine_events=res.engine_events, total_nodes=res.total_nodes,
        sim_time=res.sim_time, lost_work=res.lost_work,
        monitor=monitor.summary(),
    )
