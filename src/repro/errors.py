"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No runnable events remain but live processes are still blocked."""


class EventLimitExceeded(SimulationError):
    """The simulation exceeded its configured event budget.

    Raised to protect against runaway protocol bugs (e.g. livelock in a
    termination detector) rather than spinning forever.
    """


class ThreadKilled(ReproError):
    """Thrown into a UPC thread's generator to fail-stop it.

    Injected by the fault layer's kill watchdog via
    :meth:`repro.sim.engine.Simulator.interrupt`; algorithm mains run
    under a guard that catches it and hands the corpse's work to the
    loss accountant.
    """


class ProtocolError(ReproError):
    """A load-balancing protocol violated one of its invariants."""


class InvariantViolation(ProtocolError):
    """An online invariant check (``repro.check``) failed mid-run.

    Subclasses :class:`ProtocolError` because a violation *is* a
    protocol bug; the separate type lets the schedule fuzzer tell its
    own checks apart from the protocols' built-in assertions.
    """


class ConfigError(ReproError):
    """Invalid experiment, machine, or tree configuration."""


class SweepWorkerError(ReproError):
    """A sweep worker process failed while executing one job.

    The message carries the failing cell's identity
    (``algorithm/threads/chunk_size/tree``) and the worker-side
    traceback, so a crash deep inside a forked process is still
    attributable to one grid cell.
    """
