"""Shared configuration for the figure-regeneration benchmarks.

Scale selection: set ``REPRO_SCALE`` to ``test``, ``quick`` (default)
or ``full``.  ``quick`` regenerates every figure in a few minutes;
``full`` produces the EXPERIMENTS.md flagship numbers (tens of
minutes).

Each figure benchmark runs its sweep exactly once (``pedantic`` with
one round -- the sweep is deterministic, so repetition only wastes
time), records the paper-comparable metrics in ``extra_info``, and
prints the series so the figure is readable straight from the pytest
output (run with ``-s`` to see the tables).
"""

import os

import pytest

SCALE = os.environ.get("REPRO_SCALE", "quick")

#: Shape assertions (the paper's qualitative claims) need enough scale
#: to manifest; at the smoke-test scale we only check conservation.
CHECK_SHAPE = SCALE != "test"


@pytest.fixture(scope="session")
def scale():
    return SCALE


def run_once(benchmark, fn):
    """Run a deterministic sweep exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
