"""E2 -- Figure 4: speedup & absolute performance vs chunk size.

Paper setup: 256 threads on the Kitty Hawk cluster, the 10.6B-node T1
tree, all five implementations, chunk sizes swept.  Reproduction setup
(scaled; see EXPERIMENTS.md): same five implementations and cost model,
scaled thread count and tree.

Shape checks asserted here (the paper's qualitative claims):

* the distributed-memory algorithm is the best UPC implementation and
  at least matches the MPI baseline at the sweet spot;
* ``upc-sharedmem`` collapses at small chunk sizes;
* performance falls off at the large-``k`` end (too little balancing).
"""

from conftest import CHECK_SHAPE, SCALE, run_once

from repro.harness.figures import figure4


def test_figure4(benchmark, capsys):
    result = run_once(benchmark, lambda: figure4(scale=SCALE))
    with capsys.disabled():
        print()
        print(result.render())

    sweep = result.sweep
    ks = sweep.setup.chunk_sizes

    best_distmem = sweep.best("upc-distmem")
    best_sharedmem = sweep.best("upc-sharedmem")
    best_mpi = sweep.best("mpi-ws")

    benchmark.extra_info["best_distmem_k"] = best_distmem.chunk_size
    benchmark.extra_info["best_distmem_eff"] = round(best_distmem.efficiency, 3)
    benchmark.extra_info["distmem_over_sharedmem"] = round(
        best_distmem.nodes_per_sec / best_sharedmem.nodes_per_sec, 3)
    benchmark.extra_info["distmem_over_mpi"] = round(
        best_distmem.nodes_per_sec / best_mpi.nodes_per_sec, 3)

    if not CHECK_SHAPE:
        return

    # Claim: distmem is the best UPC implementation at the sweet spot.
    assert best_distmem.nodes_per_sec >= 0.95 * best_sharedmem.nodes_per_sec
    assert best_distmem.nodes_per_sec >= \
        sweep.best("upc-term").nodes_per_sec * 0.95

    # Claim: distmem at least matches MPI ("slightly outperforms").
    assert best_distmem.nodes_per_sec >= 0.95 * best_mpi.nodes_per_sec

    # Claim: sharedmem suffers extreme degradation at the smallest k
    # relative to its own sweet spot...
    small_k = min(ks)
    sm_small = sweep.get("upc-sharedmem", chunk_size=small_k)
    assert sm_small.nodes_per_sec < 0.6 * best_sharedmem.nodes_per_sec
    # ... and relative to distmem at the same k.
    dm_small = sweep.get("upc-distmem", chunk_size=small_k)
    assert sm_small.nodes_per_sec < dm_small.nodes_per_sec

    # Claim: the sweet spot is interior -- performance falls at large k.
    big_k = max(ks)
    dm_big = sweep.get("upc-distmem", chunk_size=big_k)
    assert best_distmem.chunk_size < big_k
    assert dm_big.nodes_per_sec <= best_distmem.nodes_per_sec
