"""E1 -- Sect. 4.1 sequential baseline.

The paper reports per-platform sequential rates (2.10 / 2.39 / 1.12
Mnodes/s), which are *inputs* to our cost model; this bench prints that
table and measures the host's real sequential traversal rate for each
RNG engine (the paper notes the rate "primarily reflects the speed at
which the processor can calculate SHA-1 hash evaluations").
"""

import pytest

from repro import TreeParams, count_tree
from repro.harness.figures import sequential_baseline

TREE_SHA1 = TreeParams.binomial(b0=200, m=2, q=0.495, seed=1)


def test_sequential_baseline_table(capsys):
    table = sequential_baseline()
    with capsys.disabled():
        print("\n=== E1: sequential rates (model inputs vs paper) ===")
        print(table)
    assert "2.39" in table


@pytest.mark.parametrize("engine", ["sha1", "sha1-pure", "splitmix"])
def test_sequential_traversal_rate(benchmark, engine, capsys):
    tree = TREE_SHA1.with_engine(engine)
    if engine == "sha1-pure":
        # The from-scratch SHA-1 is ~50x slower; shrink the workload.
        tree = TreeParams.binomial(b0=50, m=2, q=0.45, seed=1,
                                   engine="sha1-pure")
    stats = benchmark(count_tree, tree)
    rate = stats.n_nodes / stats.host_seconds
    benchmark.extra_info["nodes"] = stats.n_nodes
    benchmark.extra_info["host_mnodes_per_sec"] = round(rate / 1e6, 3)
    with capsys.disabled():
        print(f"\n[{engine}] host sequential rate: {rate / 1e6:.3f} Mnodes/s "
              f"({stats.n_nodes:,} nodes)")
    assert stats.n_nodes > 0
