"""E5 -- Sect. 4.2 refinement ablation.

"Note that each of the refinements presented in Sections 3.3.1-3.3.3
shows an improvement in these results; the total improvement is about
37%."

The chain, each at its own best chunk size on the Figure-4 setup:

    upc-sharedmem -> upc-term -> upc-term-rapdif -> upc-distmem
      (baseline)      (3.3.1)       (3.3.2)          (3.3.3)

Shape checks: every step is at worst neutral (allowing simulation
noise), at least one step is a clear win, and the total improvement is
substantial.  The contention effects behind the refinements grow with
thread count, so the thresholds scale with the setup: the paper's full
+37% needs its 256 threads; at our ``quick`` scale (16 threads) the
compressed-but-consistent ordering is the reproducible signal.
"""

from conftest import CHECK_SHAPE, SCALE, run_once

from repro.harness.figures import ablation


def test_ablation(benchmark, capsys):
    result = run_once(benchmark, lambda: ablation(scale=SCALE))
    with capsys.disabled():
        print()
        print(result.render())

    steps = result.improvements()
    total = result.total_improvement
    for a, b, ratio in steps:
        benchmark.extra_info[f"{a}->{b}"] = round(ratio, 3)
    benchmark.extra_info["total_improvement"] = round(total, 3)
    if not CHECK_SHAPE:
        return
    # Best-k comparison compresses the gap (sharedmem hides its release
    # overhead at large k); at the paper's 256 threads the compression
    # is weaker, hence their +37%.  Measured at full scale (T=32):
    # +11.5% total with every step positive; at fixed k=4 and T=64 the
    # uncompressed distmem/sharedmem ratio is ~1.6x.
    min_step, min_total = (0.97, 1.08) if SCALE == "full" else (0.93, 1.05)
    for a, b, ratio in steps:
        assert ratio >= min_step, f"refinement {a} -> {b} regressed: {ratio:.3f}"
    assert max(r for _, _, r in steps) > 1.05, "no refinement shows a clear win"
    assert total > min_total, f"total improvement too small: {total:.3f}"
