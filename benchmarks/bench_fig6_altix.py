"""E4 -- Figure 6: shared-memory performance (SGI Altix 3700 model).

Paper setup: Itanium2 Altix, up to 64 processors; both UPC algorithms
scale near-linearly ("results are close for both UPC implementations")
while MPI lags slightly "due to poor cache behavior and MPI overheads".

Shape checks:

* both UPC implementations near-linear (high efficiency) on the
  low-latency fabric;
* the two UPC curves are close -- performance portability: the
  distributed-memory algorithm gives up nothing on shared memory;
* mpi-ws at or below the UPC implementations.
"""

from conftest import CHECK_SHAPE, SCALE, run_once

from repro.harness.figures import figure6


def test_figure6(benchmark, capsys):
    result = run_once(benchmark, lambda: figure6(scale=SCALE))
    with capsys.disabled():
        print()
        print(result.render())

    sweep = result.sweep
    threads = sweep.setup.thread_counts
    top = sweep.get("upc-distmem", threads=threads[-1])
    benchmark.extra_info["top_threads"] = top.n_threads
    benchmark.extra_info["top_efficiency"] = round(top.efficiency, 3)
    if not CHECK_SHAPE:
        return

    # Near-linear speedup for both UPC implementations at the low end.
    for alg in ("upc-sharedmem", "upc-distmem"):
        low = sweep.get(alg, threads=threads[0])
        assert low.efficiency > 0.9, f"{alg} not near-linear on Altix"

    # The two UPC curves stay close across the sweep (within 20%).
    for t in threads:
        sm = sweep.get("upc-sharedmem", threads=t)
        dm = sweep.get("upc-distmem", threads=t)
        ratio = dm.nodes_per_sec / sm.nodes_per_sec
        assert 0.8 < ratio < 1.25, f"UPC curves diverged at T={t}: {ratio:.2f}"

    # MPI lags slightly behind the best UPC implementation.
    for t in threads:
        best_upc = max(sweep.get("upc-sharedmem", threads=t).nodes_per_sec,
                       sweep.get("upc-distmem", threads=t).nodes_per_sec)
        mpi = sweep.get("mpi-ws", threads=t)
        assert mpi.nodes_per_sec <= 1.05 * best_upc
