"""E3 + E6 -- Figure 5 (Topsail scaling) and the headline claims.

Paper setup: the 157B-node T3 tree on Topsail, up to 1024 processors;
upc-distmem processes 1.7B nodes/s (speedup 819, efficiency 80%) while
sustaining >85,000 steals/s, with 93% of working-state time.

Reproduction (scaled; see EXPERIMENTS.md): same algorithms and cost
model with thread counts and tree scaled together.  Shape checks:

* near-linear scaling at the low end, graceful tapering at the top;
* upc-distmem >= mpi-ws across the curve;
* at the top of the curve the run sustains a five-figure steal rate.
"""

from conftest import CHECK_SHAPE, SCALE, run_once

from repro.harness.figures import figure5, headline_claims


def test_figure5(benchmark, capsys):
    result = run_once(benchmark, lambda: figure5(scale=SCALE))
    with capsys.disabled():
        print()
        print(result.render())

    sweep = result.sweep
    threads = sweep.setup.thread_counts
    top = sweep.get("upc-distmem", threads=threads[-1])
    benchmark.extra_info["top_threads"] = top.n_threads
    benchmark.extra_info["top_speedup"] = round(top.speedup, 1)
    benchmark.extra_info["top_efficiency"] = round(top.efficiency, 3)
    benchmark.extra_info["top_steals_per_sec"] = round(top.steals_per_sec)
    if not CHECK_SHAPE:
        return

    # Near-linear at the low end.
    low = sweep.get("upc-distmem", threads=threads[0])
    assert low.efficiency > 0.85

    # Monotone speedup along the curve.
    curve = [sweep.get("upc-distmem", threads=t) for t in threads]
    speedups = [r.speedup for r in curve]
    assert speedups == sorted(speedups)

    # distmem at least matches mpi at every thread count.
    for t in threads:
        dm = sweep.get("upc-distmem", threads=t)
        mpi = sweep.get("mpi-ws", threads=t)
        assert dm.nodes_per_sec >= 0.95 * mpi.nodes_per_sec

def test_headline_claims(benchmark, capsys):
    claims = run_once(benchmark, lambda: headline_claims(scale=SCALE))
    with capsys.disabled():
        print()
        print(claims.render())
    r = claims.run
    benchmark.extra_info["efficiency"] = round(r.efficiency, 3)
    benchmark.extra_info["steals_per_sec"] = round(r.steals_per_sec)
    benchmark.extra_info["working_fraction"] = round(r.working_fraction, 3)
    if not CHECK_SHAPE:
        return
    # The sustained steal rate claim (>85k/s in the paper) holds in the
    # scaled regime too -- steals are continuous, not an artifact.
    assert r.steals_per_sec > 10_000
    # The efficiency band: meaningfully parallel at the top of the curve.
    assert r.efficiency > 0.5
