"""Ablation benches for the design choices DESIGN.md calls out, plus
the paper's Sect. 6.2 extension.

* **Latency sensitivity** -- the paper's whole premise: the lock-based
  shared-memory algorithm degrades far faster than the lock-less
  distmem algorithm as remote references get more expensive.  We sweep
  the remote-reference cost and check the divergence.
* **MPI polling interval** -- Sect. 3.2's "user-supplied parameter":
  too-frequent polling wastes the worker, too-rare polling starves the
  thieves.  We check the mpi-ws sweet spot is interior.
* **Hierarchical stealing** (``upc-distmem-hier``) -- the Sect. 6.2
  future work: probing on-node ranks first must not hurt, and shifts
  probe traffic onto the cheap intra-node links.
"""

import pytest
from conftest import CHECK_SHAPE, SCALE, run_once

from repro import KITTYHAWK, TreeParams, WsConfig, expected_node_count, run_experiment
from repro.harness.ascii_plot import series_table

TREE = {
    "test": TreeParams.binomial(b0=100, m=2, q=0.49, seed=0),
    "quick": TreeParams.binomial(b0=500, m=2, q=0.499, seed=0),
    "full": TreeParams.binomial(b0=2000, m=2, q=0.4995, seed=0,
                                engine="splitmix"),
}[SCALE]
THREADS = {"test": 8, "quick": 16, "full": 32}[SCALE]


def test_latency_sensitivity_ablation(benchmark, capsys):
    """sharedmem degrades faster than distmem as remote refs get slower."""
    expected = expected_node_count(TREE)
    factors = [0.25, 1.0, 4.0]

    def sweep():
        out = {}
        for alg in ("upc-distmem", "upc-sharedmem"):
            out[alg] = []
            for f in factors:
                net = KITTYHAWK.with_overrides(
                    remote_shared_ref=KITTYHAWK.remote_shared_ref * f,
                    rdma_latency=KITTYHAWK.rdma_latency * f,
                    lock_overhead=KITTYHAWK.lock_overhead * f,
                )
                res = run_experiment(alg, tree=TREE, threads=THREADS,
                                     net=net, chunk_size=4)
                res.verify(expected)
                out[alg].append(res)
        return out

    results = run_once(benchmark, sweep)
    rows = [[alg, f, round(r.nodes_per_sec / 1e6, 3)]
            for alg, runs in results.items()
            for f, r in zip(factors, runs)]
    with capsys.disabled():
        print("\n=== latency-sensitivity ablation ===")
        print(series_table(["algorithm", "latency_x", "Mnodes/s"], rows))

    def degradation(alg):
        runs = results[alg]
        return runs[0].nodes_per_sec / runs[-1].nodes_per_sec

    benchmark.extra_info["sharedmem_degradation"] = round(
        degradation("upc-sharedmem"), 2)
    benchmark.extra_info["distmem_degradation"] = round(
        degradation("upc-distmem"), 2)
    if CHECK_SHAPE:
        assert degradation("upc-sharedmem") > degradation("upc-distmem"), \
            "sharedmem should be the latency-sensitive algorithm"


def test_mpi_polling_interval_sweep(benchmark, capsys):
    """The mpi-ws polling interval has an interior sweet spot."""
    expected = expected_node_count(TREE)
    intervals = [4, 32, 512]

    def sweep():
        out = []
        for pi in intervals:
            cfg = WsConfig(chunk_size=4, poll_interval=pi)
            res = run_experiment("mpi-ws", tree=TREE, threads=THREADS,
                                 preset="kittyhawk", config=cfg)
            res.verify(expected)
            out.append(res)
        return out

    runs = run_once(benchmark, sweep)
    rows = [[pi, round(r.nodes_per_sec / 1e6, 3)]
            for pi, r in zip(intervals, runs)]
    with capsys.disabled():
        print("\n=== mpi-ws polling-interval sweep ===")
        print(series_table(["poll_interval", "Mnodes/s"], rows))
    benchmark.extra_info["rates"] = {pi: round(r.nodes_per_sec / 1e6, 3)
                                     for pi, r in zip(intervals, runs)}
    if CHECK_SHAPE:
        # Very coarse polling starves thieves relative to the default.
        assert runs[-1].nodes_per_sec < 1.02 * max(r.nodes_per_sec
                                                   for r in runs[:-1])


def test_am_mode_performance_portability(benchmark, capsys):
    """Sect. 6.1 ablation: the same UPC program on hardware one-sided
    support vs an active-message runtime (the `bupc_poll()` world).
    UPC's advantage over MPI should narrow without hardware RDMA."""
    expected = expected_node_count(TREE)
    am_net = KITTYHAWK.with_overrides(am_mode=True)

    def sweep():
        out = {}
        for label, kw in (("hw", dict(preset="kittyhawk")),
                          ("am", dict(net=am_net))):
            out[label] = {
                alg: run_experiment(alg, tree=TREE, threads=THREADS,
                                    chunk_size=8, **kw)
                for alg in ("upc-distmem", "mpi-ws")
            }
            for r in out[label].values():
                r.verify(expected)
        return out

    results = run_once(benchmark, sweep)
    rows = []
    for label, runs in results.items():
        for alg, r in runs.items():
            rows.append([label, alg, round(r.nodes_per_sec / 1e6, 3)])
    with capsys.disabled():
        print("\n=== AM-emulation (no hardware RDMA) ablation ===")
        print(series_table(["runtime", "algorithm", "Mnodes/s"], rows))

    hw_ratio = (results["hw"]["upc-distmem"].nodes_per_sec /
                results["hw"]["mpi-ws"].nodes_per_sec)
    am_ratio = (results["am"]["upc-distmem"].nodes_per_sec /
                results["am"]["mpi-ws"].nodes_per_sec)
    benchmark.extra_info["upc_over_mpi_hw"] = round(hw_ratio, 3)
    benchmark.extra_info["upc_over_mpi_am"] = round(am_ratio, 3)
    if CHECK_SHAPE:
        assert results["am"]["upc-distmem"].sim_time > \
            results["hw"]["upc-distmem"].sim_time
        assert am_ratio < hw_ratio * 1.02


def test_hierarchical_stealing_extension(benchmark, capsys):
    """Sect. 6.2 extension: on-node-first probing is competitive and
    moves probe traffic on-node."""
    expected = expected_node_count(TREE)

    def pair():
        flat = run_experiment("upc-distmem", tree=TREE, threads=THREADS,
                              preset="kittyhawk", chunk_size=8)
        hier = run_experiment("upc-distmem-hier", tree=TREE, threads=THREADS,
                              preset="kittyhawk", chunk_size=8)
        flat.verify(expected)
        hier.verify(expected)
        return flat, hier

    flat, hier = run_once(benchmark, pair)
    with capsys.disabled():
        print("\n=== hierarchical stealing (Sect. 6.2 extension) ===")
        print(series_table(
            ["variant", "Mnodes/s", "eff_%", "steals"],
            [["upc-distmem", round(flat.nodes_per_sec / 1e6, 3),
              round(flat.efficiency * 100, 1), flat.stats.steals_ok],
             ["upc-distmem-hier", round(hier.nodes_per_sec / 1e6, 3),
              round(hier.efficiency * 100, 1), hier.stats.steals_ok]]))
    ratio = hier.nodes_per_sec / flat.nodes_per_sec
    benchmark.extra_info["hier_over_flat"] = round(ratio, 3)
    if CHECK_SHAPE:
        assert ratio > 0.9, f"hierarchical variant regressed: {ratio:.3f}"
