"""Microbenchmarks of the substrates (pytest-benchmark's home turf).

Not paper figures -- these watch for regressions in the hot paths the
figure benches depend on: the discrete-event engine, tree-node
generation per engine, and a small end-to-end simulated run.
"""

import pytest

from repro import TreeParams, run_experiment
from repro.sim import Simulator, Timeout
from repro.uts.rng import get_engine
from repro.uts.tree import Tree

MICRO_TREE = TreeParams.binomial(b0=50, m=2, q=0.47, seed=3)


def test_engine_event_throughput(benchmark):
    """Raw engine speed: 10k timeout events through the heap."""

    def run():
        sim = Simulator()

        def proc():
            for _ in range(10_000):
                yield Timeout(1e-6)

        sim.spawn(proc())
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events >= 10_000


@pytest.mark.parametrize("engine", ["sha1", "splitmix"])
def test_node_expansion_rate(benchmark, engine):
    """children() throughput -- the inner loop of everything."""
    tree = Tree(MICRO_TREE.with_engine(engine))
    nodes = list(tree.iter_dfs())[:2000]

    def expand():
        total = 0
        children = tree.children
        for n in nodes:
            total += len(children(n))
        return total

    total = benchmark(expand)
    assert total > 0


def test_rng_spawn_rate(benchmark):
    engine = get_engine("sha1")
    state = engine.init(0)

    def spawn_many():
        s = state
        for i in range(5000):
            s = engine.spawn(s, i & 3)
        return s

    benchmark(spawn_many)


def test_small_end_to_end_run(benchmark):
    """A complete simulated distmem run on a small tree."""

    def run():
        return run_experiment("upc-distmem", tree=MICRO_TREE, threads=8,
                              preset="kittyhawk", chunk_size=4)

    res = benchmark(run)
    assert res.total_nodes > 0
