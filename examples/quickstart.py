#!/usr/bin/env python
"""Quickstart: one parallel UTS search on the simulated cluster.

Runs the paper's best algorithm (``upc-distmem``) on a moderately
unbalanced tree with 16 simulated UPC threads using the Kitty Hawk
cluster cost model, verifies the count against the sequential oracle,
and prints the metrics the paper reports.

    python examples/quickstart.py
"""

from repro import TreeParams, expected_node_count, run_experiment


def main() -> None:
    # A ~215k-node binomial UTS tree: the root has 500 children; below
    # it, nodes fork with probability q=0.499 -- close enough to the
    # critical 0.5 that subtree sizes are wildly imbalanced.
    tree = TreeParams.binomial(b0=500, m=2, q=0.499, seed=0)

    print(f"tree: {tree.describe()}")
    print(f"sequential node count: {expected_node_count(tree):,}")
    print()

    result = run_experiment(
        "upc-distmem",       # the paper's distributed-memory algorithm
        tree=tree,
        threads=16,          # simulated UPC threads
        preset="kittyhawk",  # Infiniband cluster cost model
        chunk_size=8,        # work-stealing granularity k
        verify=True,         # assert the parallel count is exact
    )

    print(result.summary())
    print()
    print(f"simulated time      : {result.sim_time * 1e3:.2f} ms")
    print(f"speedup             : {result.speedup:.1f} on {result.n_threads} threads")
    print(f"parallel efficiency : {result.efficiency * 100:.1f}%")
    print(f"steal operations    : {result.stats.steals_ok:,} "
          f"({result.steals_per_sec:,.0f}/s)")
    print(f"working-state share : {result.working_fraction * 100:.1f}%")
    print(f"(host took {result.host_seconds:.2f}s to simulate "
          f"{result.engine_events:,} events)")


if __name__ == "__main__":
    main()
