#!/usr/bin/env python
"""Strong scaling of upc-distmem vs mpi-ws (paper Sect. 4.2.2 / Figure 5).

Doubles the simulated thread count and reports speedup, efficiency and
the sustained steal rate -- the regime where the paper reports 80%
efficiency at 1024 processors with >85,000 steals/s.

    python examples/scaling_study.py [--big]

``--big`` uses a ~1.5M-node tree (about a minute of host time) whose
top-of-curve efficiency matches the paper's headline band.
"""

import sys

from repro import TreeParams, expected_node_count, run_experiment
from repro.harness.ascii_plot import ascii_chart, series_table


def main() -> None:
    big = "--big" in sys.argv
    if big:
        tree = TreeParams.binomial(b0=2000, m=2, q=0.4995, seed=0,
                                   engine="splitmix")
        thread_counts = [2, 4, 8, 16, 32]
    else:
        tree = TreeParams.binomial(b0=500, m=2, q=0.499, seed=0)
        thread_counts = [2, 4, 8, 16]

    expected = expected_node_count(tree)
    print(f"tree: {tree.describe()} ({expected:,} nodes), topsail model\n")

    rows = []
    series = {}
    for alg in ("upc-distmem", "mpi-ws"):
        points = []
        for t in thread_counts:
            res = run_experiment(alg, tree=tree, threads=t,
                                 preset="topsail", chunk_size=8)
            res.verify(expected)
            rows.append([alg, t, round(res.speedup, 2),
                         round(res.efficiency * 100, 1),
                         round(res.nodes_per_sec / 1e6, 2),
                         round(res.steals_per_sec, 0)])
            points.append((t, res.speedup))
        series[alg] = points

    print(series_table(
        ["algorithm", "threads", "speedup", "eff_%", "Mnodes/s", "steals/s"],
        rows))
    print()
    print(ascii_chart(series, x_label="threads", y_label="speedup",
                      log_x=True, title="strong scaling"))


if __name__ == "__main__":
    main()
