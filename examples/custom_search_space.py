#!/usr/bin/env python
"""Work stealing beyond UTS: an exhaustive combinatorial search.

The paper's introduction motivates dynamic load balancing with
combinatorial optimization and enumeration -- state spaces far more
irregular than any static partition can handle.  The framework here is
workload-agnostic: anything exposing ``root()`` and ``children(node)``
can be searched by all five algorithms.

This example enumerates the full search tree of an N-queens solver
(place queens row by row; a node's children are its legal extensions).
The tree is *naturally* imbalanced: early placements prune wildly
different amounts of the space.

    python examples/custom_search_space.py [N]
"""

import sys


class QueensSearchSpace:
    """Implicit search tree for N-queens, compatible with run_experiment.

    A node is a tuple of column positions, one per placed row.  The
    node count equals the number of partially and fully valid
    placements; full placements (length N) are solutions.
    """

    def __init__(self, n: int) -> None:
        self.n = n

    def describe(self) -> str:
        return f"n-queens(n={self.n})"

    def root(self):
        return ()

    def children(self, node):
        row = len(node)
        if row == self.n:
            return []
        kids = []
        for col in range(self.n):
            if all(col != c and abs(col - c) != row - r
                   for r, c in enumerate(node)):
                kids.append(node + (col,))
        return kids

    # -- sequential oracle for verification ------------------------------

    def count_sequential(self):
        nodes = 0
        solutions = 0
        stack = [self.root()]
        while stack:
            node = stack.pop()
            nodes += 1
            if len(node) == self.n:
                solutions += 1
            stack.extend(self.children(node))
        return nodes, solutions


def main() -> None:
    from repro import run_experiment

    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    space = QueensSearchSpace(n)
    nodes, solutions = space.count_sequential()
    print(f"{n}-queens: {nodes:,} search nodes, {solutions:,} solutions\n")

    for alg in ("upc-distmem", "mpi-ws"):
        res = run_experiment(alg, tree=space, threads=8,
                             preset="kittyhawk", chunk_size=4, verify=False)
        status = "OK" if res.total_nodes == nodes else "MISMATCH!"
        print(f"{alg:>12s}: counted {res.total_nodes:,} nodes [{status}]  "
              f"speedup {res.speedup:.1f} on 8 threads, "
              f"{res.stats.steals_ok} steals")
        assert res.total_nodes == nodes


if __name__ == "__main__":
    main()
