#!/usr/bin/env python
"""Anatomy of a UTS workload (paper Sect. 2).

The paper's load-balancing challenge rests on two statistical claims
about binomial UTS trees near criticality:

* "Over 99.9% of the work is contained in just one of the 2000
  subtrees below the root" -- extreme concentration;
* "The distribution of subtree sizes ... consists of frequent small
  subtrees and occasionally enormous subtrees" -- a heavy power-law
  tail (theory: survival exponent -1/2 at criticality).

This example measures both for trees at increasing distance from
criticality, showing how the q parameter dials the difficulty.

    python examples/workload_anatomy.py
"""

from repro import TreeParams
from repro.harness.ascii_plot import log_histogram, series_table
from repro.uts.stats import root_subtree_imbalance, tail_exponent


def main() -> None:
    rows = []
    for q in (0.30, 0.45, 0.49, 0.499):
        params = TreeParams.binomial(b0=500, m=2, q=q, seed=0)
        imb = root_subtree_imbalance(params)
        alpha, r = tail_exponent(imb.sizes)
        rows.append([
            q,
            imb.total,
            round(100 * imb.largest_fraction, 1),
            round(imb.gini, 3),
            round(alpha, 2),
            round(r, 3),
        ])
    print("binomial UTS trees, b0=500, m=2, seed=0:\n")
    print(series_table(
        ["q", "total_nodes", "largest_subtree_%", "gini",
         "tail_exponent", "fit_r"],
        rows))
    print(
        "\nAs q -> 1/2 the tail exponent approaches the critical -1/2,\n"
        "concentration explodes (one subtree holds most of the work), and\n"
        "static partitioning becomes hopeless -- the paper's premise.\n"
    )
    sizes = root_subtree_imbalance(
        TreeParams.binomial(b0=500, m=2, q=0.499, seed=0)).sizes
    print(log_histogram(sizes, title="root-subtree sizes at q=0.499 "
                                     "(power-of-two bins):"))



if __name__ == "__main__":
    main()
