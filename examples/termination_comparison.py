#!/usr/bin/env python
"""Termination-detection strategies head to head (paper Sect. 3.3.1).

Same stack discipline, same steal policy -- only termination differs:

* ``upc-sharedmem``: cancelable barrier.  Every release *resets* the
  barrier (a remote write) and wakes all waiters; idle threads churn
  in and out of the barrier.
* ``upc-term``: streamlined detection.  A thread enters the barrier
  only after observing every other thread fully out of work, so the
  barrier is entered (nearly) once per thread.
* ``mpi-ws``: Dijkstra's token ring (for reference).

The counters make the difference concrete: compare barrier entries and
barrier-state time, then look at the throughput gap.

    python examples/termination_comparison.py
"""

from repro import TreeParams, expected_node_count, run_experiment
from repro.harness.ascii_plot import series_table

TREE = TreeParams.binomial(b0=500, m=2, q=0.499, seed=0)
THREADS = 16
K = 4


def main() -> None:
    expected = expected_node_count(TREE)
    print(f"tree: {TREE.describe()} ({expected:,} nodes), "
          f"{THREADS} threads, k={K}, kittyhawk model\n")

    rows = []
    for alg in ("upc-sharedmem", "upc-term", "mpi-ws"):
        res = run_experiment(alg, tree=TREE, threads=THREADS,
                             preset="kittyhawk", chunk_size=K)
        res.verify(expected)
        agg = res.stats
        barrier_share = agg.state_times["barrier"] / sum(
            agg.state_times.values())
        rows.append([
            alg,
            agg.barrier_entries,
            agg.barrier_exits,
            round(barrier_share * 100, 1),
            round(res.efficiency * 100, 1),
            round(res.nodes_per_sec / 1e6, 2),
        ])

    print(series_table(
        ["algorithm", "barrier_entries", "barrier_exits",
         "barrier_time_%", "eff_%", "Mnodes/s"],
        rows))
    print("\nNote how streamlined termination (upc-term) enters the "
          "barrier about once per thread,\nwhile the cancelable barrier "
          "(upc-sharedmem) churns entries and exits.")


if __name__ == "__main__":
    main()
