#!/usr/bin/env python
"""Visualize the Figure-1 state machine in action.

Renders per-thread execution timelines for two algorithms on the same
workload: watch work diffuse from thread 0 outward, steals happen at
the frontier, and the final collapse into termination detection.
Compare how much of the picture is ``W`` (working) for upc-distmem vs
upc-sharedmem at a small chunk size.

    python examples/execution_timeline.py
"""

from repro import TreeParams, run_experiment
from repro.metrics import render_timeline
from repro.sim import Tracer

TREE = TreeParams.binomial(b0=200, m=2, q=0.49, seed=1)
THREADS = 8


def show(algorithm: str, chunk_size: int) -> None:
    tracer = Tracer()
    res = run_experiment(algorithm, tree=TREE, threads=THREADS,
                         preset="kittyhawk", chunk_size=chunk_size,
                         tracer=tracer, verify=True)
    print(f"--- {algorithm} (k={chunk_size}) --- "
          f"efficiency {res.efficiency * 100:.1f}%, "
          f"{res.stats.steals_ok} steals")
    print(render_timeline(tracer, THREADS, res.sim_time, width=72))
    print()


def main() -> None:
    print(f"tree: {TREE.describe()}\n")
    show("upc-distmem", chunk_size=4)
    show("upc-sharedmem", chunk_size=4)
    print("The distmem timeline is denser with W: streamlined "
          "termination avoids the\nbarrier churn and no stack locking "
          "stalls the workers.")


if __name__ == "__main__":
    main()
