#!/usr/bin/env python
"""The chunk-size "sweet spot" (paper Sect. 4.2.1 / Figure 4).

Sweeps the work-stealing granularity ``k`` for two algorithms on the
Kitty Hawk cluster model and prints the performance curve, showing:

* the plateau of good chunk sizes,
* the collapse of the shared-memory algorithm at small ``k`` (every
  release resets the cancelable barrier under lock),
* falling performance at large ``k`` (work too coarse to balance).

    python examples/chunk_size_sweep.py
"""

from repro import TreeParams, expected_node_count, run_experiment
from repro.harness.ascii_plot import ascii_chart

TREE = TreeParams.binomial(b0=500, m=2, q=0.499, seed=0)
THREADS = 16
CHUNK_SIZES = [1, 2, 4, 8, 16, 32, 64]
ALGORITHMS = ["upc-distmem", "upc-sharedmem"]


def main() -> None:
    expected = expected_node_count(TREE)
    print(f"tree: {TREE.describe()} ({expected:,} nodes), "
          f"{THREADS} threads, kittyhawk model\n")

    series = {}
    for alg in ALGORITHMS:
        points = []
        for k in CHUNK_SIZES:
            res = run_experiment(alg, tree=TREE, threads=THREADS,
                                 preset="kittyhawk", chunk_size=k)
            res.verify(expected)
            points.append((k, res.nodes_per_sec / 1e6))
            print(f"{alg:>14s} k={k:<3d} {res.nodes_per_sec / 1e6:7.2f} Mnodes/s "
                  f"(eff {res.efficiency * 100:5.1f}%, "
                  f"{res.stats.steals_ok} steals, "
                  f"{res.stats.releases} releases)")
        series[alg] = points
        best_k = max(points, key=lambda p: p[1])[0]
        print(f"{alg:>14s} sweet spot: k = {best_k}\n")

    print(ascii_chart(series, x_label="chunk size k", y_label="Mnodes/s",
                      log_x=True, title="performance vs chunk size"))


if __name__ == "__main__":
    main()
