#!/usr/bin/env python
"""The distmem protocol on real OS threads (correctness demo).

Everything else in this package runs on a deterministic simulator; this
demo runs the same lock-less request/response protocol with genuine
``threading.Thread`` workers racing each other, and cross-checks the
node count against the sequential oracle.  (The GIL means no actual
speedup -- this validates the protocol logic, not performance.)

    python examples/native_threads_demo.py
"""

import time

from repro import TreeParams, expected_node_count
from repro.native import native_distmem_search


def main() -> None:
    tree = TreeParams.binomial(b0=300, m=2, q=0.49, seed=0)
    expected = expected_node_count(tree)
    print(f"tree: {tree.describe()} ({expected:,} nodes)\n")

    for threads in (1, 2, 4, 8):
        t0 = time.perf_counter()
        res = native_distmem_search(tree, threads=threads, chunk_size=4)
        res.verify(expected)
        spread = ", ".join(f"{n:,}" for n in res.per_thread_nodes)
        print(f"{threads} threads: count OK in {time.perf_counter() - t0:.2f}s "
              f"| steals={res.steals_ok:3d} denied={res.requests_denied:3d} "
              f"| per-thread nodes: [{spread}]")

    print("\nEvery run counted the tree exactly -- the lock-less protocol "
          "survives real preemption.")


if __name__ == "__main__":
    main()
