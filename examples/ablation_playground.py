#!/usr/bin/env python
"""Design-space playground: the reproduction's ablation knobs in one place.

Four one-factor experiments on the same workload:

1. steal-one vs steal-half on the distmem protocol (isolates rapid
   diffusion, Sect. 3.3.2);
2. hardware one-sided vs active-message runtime (Sect. 6.1);
3. flat vs hierarchical victim selection (Sect. 6.2);
4. the victim polling interval.

    python examples/ablation_playground.py
"""

from repro import KITTYHAWK, TreeParams, WsConfig, run_experiment
from repro.harness.ascii_plot import series_table

TREE = TreeParams.binomial(b0=500, m=2, q=0.499, seed=0)
THREADS = 16


def run(label, algorithm="upc-distmem", net=None, **cfg_kw):
    config = WsConfig(chunk_size=cfg_kw.pop("chunk_size", 8), **cfg_kw)
    res = run_experiment(algorithm, tree=TREE, threads=THREADS,
                         net=net, preset="kittyhawk", config=config,
                         verify=True)
    return [label, round(res.nodes_per_sec / 1e6, 2),
            round(res.efficiency * 100, 1), res.stats.steals_ok]


def main() -> None:
    print(f"tree: {TREE.describe()}, {THREADS} threads, kittyhawk model\n")
    rows = [
        run("distmem (native: steal-half)"),
        run("distmem forced steal-one", steal_policy="one"),
        run("distmem on AM runtime (no HW RDMA)",
            net=KITTYHAWK.with_overrides(am_mode=True)),
        run("distmem-hier (on-node first)", algorithm="upc-distmem-hier"),
        run("distmem poll_interval=4", poll_interval=4),
        run("distmem poll_interval=128", poll_interval=128),
    ]
    print(series_table(["variant", "Mnodes/s", "eff_%", "steals"], rows))
    print("\nEach knob isolates one design decision from the paper; see"
          "\nbenchmarks/bench_extensions.py for the asserted versions.")


if __name__ == "__main__":
    main()
